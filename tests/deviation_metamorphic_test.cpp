// Metamorphic suite for the deviation engine: optimal misreport, collusion
// and Sybil ratios are invariant under the ring's dihedral symmetries
// (rotation, reflection) and under uniform positive weight scaling — the
// incentive ratio is a property of the weighted isomorphism class, not of
// the labeling or the weight unit. The optimizers are exact, so invariance
// is asserted bit-identically, not approximately.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "exp/families.hpp"
#include "game/deviation.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::game {
namespace {

std::vector<Rational> ring_weights(std::size_t n, util::Xoshiro256& rng) {
  std::vector<Rational> weights;
  for (std::size_t i = 0; i < n; ++i)
    weights.emplace_back(rng.uniform_int(1, 9));
  return weights;
}

/// Rotated copy: rotated[i] = weights[(i + shift) % n]. Vertex v of the
/// base ring sits at (v − shift) mod n in the copy.
std::vector<Rational> rotated(const std::vector<Rational>& weights,
                              std::size_t shift) {
  const std::size_t n = weights.size();
  std::vector<Rational> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(weights[(i + shift) % n]);
  return out;
}

/// Reflected copy: reflected[i] = weights[(n − i) % n]. Vertex v sits at
/// (n − v) mod n in the copy.
std::vector<Rational> reflected(const std::vector<Rational>& weights) {
  const std::size_t n = weights.size();
  std::vector<Rational> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(weights[(n - i) % n]);
  return out;
}

std::vector<Rational> scaled(const std::vector<Rational>& weights,
                             const Rational& factor) {
  std::vector<Rational> out;
  for (const Rational& w : weights) out.push_back(w * factor);
  return out;
}

TEST(DeviationMetamorphic, MisreportRatioInvariantUnderRotationReflection) {
  util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::vector<Rational> weights = ring_weights(n, rng);
    const Graph base = graph::make_ring(weights);
    for (Vertex v = 0; v < n; ++v) {
      const MisreportOptimum expected = MisreportOptimizer(base, v).optimize();
      EXPECT_EQ(expected.ratio, Rational(1));  // Theorem 10

      for (std::size_t shift = 1; shift < n; ++shift) {
        const Graph copy = graph::make_ring(rotated(weights, shift));
        const Vertex image = static_cast<Vertex>((v + n - shift) % n);
        const MisreportOptimum got =
            MisreportOptimizer(copy, image).optimize();
        EXPECT_EQ(got.ratio, expected.ratio);
        EXPECT_EQ(got.utility, expected.utility);
        EXPECT_EQ(got.honest_utility, expected.honest_utility);
      }
      const Graph mirror = graph::make_ring(reflected(weights));
      const Vertex image = static_cast<Vertex>((n - v) % n);
      const MisreportOptimum got =
          MisreportOptimizer(mirror, image).optimize();
      EXPECT_EQ(got.ratio, expected.ratio);
      EXPECT_EQ(got.utility, expected.utility);
    }
  }
}

TEST(DeviationMetamorphic, CollusionRatioInvariantUnderRotationReflection) {
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::vector<Rational> weights = ring_weights(n, rng);
    const Graph base = graph::make_ring(weights);
    for (Vertex v = 0; v < n; ++v) {
      const Vertex partner = static_cast<Vertex>((v + 1) % n);
      const CollusionOptimum expected =
          CollusionOptimizer(base, v, partner).optimize();
      EXPECT_LE(expected.ratio, Rational(2));

      for (std::size_t shift = 1; shift < n; ++shift) {
        const Graph copy = graph::make_ring(rotated(weights, shift));
        const Vertex iv = static_cast<Vertex>((v + n - shift) % n);
        const Vertex ip = static_cast<Vertex>((partner + n - shift) % n);
        const CollusionOptimum got =
            CollusionOptimizer(copy, iv, ip).optimize();
        EXPECT_EQ(got.ratio, expected.ratio);
        EXPECT_EQ(got.utility, expected.utility);
        EXPECT_EQ(got.honest_utility, expected.honest_utility);
      }
      const Graph mirror = graph::make_ring(reflected(weights));
      const Vertex iv = static_cast<Vertex>((n - v) % n);
      const Vertex ip = static_cast<Vertex>((n - partner) % n);
      const CollusionOptimum got =
          CollusionOptimizer(mirror, iv, ip).optimize();
      EXPECT_EQ(got.ratio, expected.ratio);
      EXPECT_EQ(got.utility, expected.utility);
    }
  }
}

// The coalition is symmetric: merging {v, partner} from either endpoint
// gives the same coalition, so the optimum is identical.
TEST(DeviationMetamorphic, CollusionSymmetricInPair) {
  util::Xoshiro256 rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const Graph ring = graph::make_ring(ring_weights(n, rng));
    const Vertex v = static_cast<Vertex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const Vertex partner = static_cast<Vertex>((v + 1) % n);
    const CollusionOptimum a = CollusionOptimizer(ring, v, partner).optimize();
    const CollusionOptimum b = CollusionOptimizer(ring, partner, v).optimize();
    EXPECT_EQ(a.ratio, b.ratio);
    EXPECT_EQ(a.utility, b.utility);
    EXPECT_EQ(a.honest_utility, b.honest_utility);
    EXPECT_EQ(a.x_star, b.x_star);
  }
}

// Uniform positive scaling: ratios are dimensionless, optimal reports and
// utilities scale linearly — all bit-exact.
TEST(DeviationMetamorphic, WeightScalingActsLinearlyOnEveryKind) {
  util::Xoshiro256 rng(909);
  const Rational factors[] = {Rational(3), Rational(5, 2), Rational(1, 7)};
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::vector<Rational> weights = ring_weights(n, rng);
    const Graph base = graph::make_ring(weights);
    for (const Rational& factor : factors) {
      const Graph copy = graph::make_ring(scaled(weights, factor));
      for (Vertex v = 0; v < n; ++v) {
        const DeviationTask tasks[] = {
            {DeviationKind::kSybil, v, 0},
            {DeviationKind::kMisreport, v, 0},
            {DeviationKind::kCollusion, v, static_cast<Vertex>((v + 1) % n)},
        };
        for (const DeviationTask& task : tasks) {
          const DeviationOptimum expected = optimize_deviation(base, task);
          const DeviationOptimum got = optimize_deviation(copy, task);
          EXPECT_EQ(got.ratio, expected.ratio)
              << to_string(task.kind) << " v=" << v;
          EXPECT_EQ(got.utility, expected.utility * factor);
          EXPECT_EQ(got.honest_utility, expected.honest_utility * factor);
          EXPECT_EQ(got.t_star, expected.t_star * factor);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ringshare::game
