// Tests for the lazy-exact numeric layer (numeric/filtered.hpp): the
// dyadic-interval enclosure invariant, the filtered front ends against the
// exact oracle, the constructed exact ties the interval can never decide,
// and end-to-end bit-identity of deviation optima with the filter on vs
// off over every small necklace.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bd/memo.hpp"
#include "exp/families.hpp"
#include "game/deviation.hpp"
#include "game/piece_solver.hpp"
#include "numeric/bigint.hpp"
#include "numeric/filtered.hpp"
#include "numeric/poly_roots.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace ringshare {
namespace {

using graph::Graph;
using num::BigInt;
using num::DyadicInterval;
using num::FilteredCompare;
using num::FilteredSign;
using num::FilterOptions;
using num::Rational;

/// Restores the hot-path configuration on scope exit so a failing assertion
/// cannot leak a reconfigured filter into other tests.
class ConfigGuard {
 public:
  ConfigGuard() : saved_(bd::hot_path_config()) {}
  ~ConfigGuard() { bd::hot_path_config() = saved_; }

 private:
  bd::HotPathConfig saved_;
};

/// The exact rational value of one interval bound m·2^e.
Rational dyadic(std::int64_t m, std::int64_t e) {
  const bool negative = m < 0;
  const BigInt magnitude(negative ? -m : m);
  Rational value =
      e >= 0 ? Rational(magnitude.shifted_left(static_cast<std::size_t>(e)))
             : Rational(magnitude,
                        BigInt(1).shifted_left(static_cast<std::size_t>(-e)));
  return negative ? -value : value;
}

/// The enclosure invariant: lo ≤ value ≤ hi, exactly.
void expect_encloses(const DyadicInterval& interval, const Rational& value,
                     const std::string& context) {
  const Rational lo = dyadic(interval.mantissa_lo(), interval.exponent());
  const Rational hi = dyadic(interval.mantissa_hi(), interval.exponent());
  EXPECT_LE(lo, value) << context;
  EXPECT_LE(value, hi) << context;
}

/// A tall random rational: numerator and denominator both around
/// `bits`-bit magnitudes, the height regime the filter engages at.
Rational tall_rational(util::Xoshiro256& rng, int bits) {
  BigInt num(rng.uniform_int(1, INT64_C(1) << 40));
  BigInt den(rng.uniform_int(1, INT64_C(1) << 40));
  num = num.shifted_left(static_cast<std::size_t>(bits - 40)) +
        BigInt(rng.uniform_int(0, INT64_C(1) << 40));
  den = den.shifted_left(static_cast<std::size_t>(bits - 40)) +
        BigInt(rng.uniform_int(1, INT64_C(1) << 40));
  const Rational value{std::move(num), std::move(den)};
  return rng.uniform_int(0, 1) ? -value : value;
}

TEST(DyadicInterval, EnclosesBigIntsAcrossHeights) {
  util::Xoshiro256 rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const int bits = static_cast<int>(rng.uniform_int(0, 400));
    BigInt value(rng.uniform_int(-(INT64_C(1) << 40), INT64_C(1) << 40));
    value = value.shifted_left(static_cast<std::size_t>(bits));
    value += BigInt(rng.uniform_int(-(INT64_C(1) << 40), INT64_C(1) << 40));
    expect_encloses(DyadicInterval::from_bigint(value), Rational(value),
                    "bits=" + std::to_string(bits));
  }
}

TEST(DyadicInterval, EnclosesRationals) {
  util::Xoshiro256 rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    const Rational value = tall_rational(rng, 60 + 2 * trial);
    expect_encloses(DyadicInterval::from_rational(value), value,
                    "trial=" + std::to_string(trial));
  }
}

TEST(DyadicInterval, ArithmeticPreservesEnclosure) {
  util::Xoshiro256 rng(20260810);
  for (int trial = 0; trial < 100; ++trial) {
    const Rational a = tall_rational(rng, 80 + trial);
    const Rational b = tall_rational(rng, 80 + 2 * trial);
    const DyadicInterval ia = DyadicInterval::from_rational(a);
    const DyadicInterval ib = DyadicInterval::from_rational(b);
    const std::string context = "trial=" + std::to_string(trial);
    expect_encloses(ia + ib, a + b, context + " sum");
    expect_encloses(ia - ib, a - b, context + " difference");
    expect_encloses(ia * ib, a * b, context + " product");
    expect_encloses(-ia, -a, context + " negation");
  }
}

TEST(DyadicInterval, CertainSignsAreTrueSigns) {
  util::Xoshiro256 rng(20260811);
  int certain = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const Rational a = tall_rational(rng, 100 + trial);
    const Rational b = tall_rational(rng, 100 + trial);
    const Rational difference = a - b;
    const DyadicInterval enclosure = DyadicInterval::from_rational(a) -
                                     DyadicInterval::from_rational(b);
    if (const std::optional<int> sign = enclosure.sign()) {
      ++certain;
      const int truth =
          difference.is_zero() ? 0 : (difference.is_negative() ? -1 : 1);
      EXPECT_EQ(*sign, truth) << "trial=" << trial;
    }
  }
  // Independent random talls essentially never tie: the filter must be
  // certain nearly always here, or it is not a filter.
  EXPECT_GT(certain, 150);
}

TEST(DyadicInterval, ZeroPointIntervalIsCertainZero) {
  const DyadicInterval zero;
  ASSERT_TRUE(zero.sign().has_value());
  EXPECT_EQ(*zero.sign(), 0);
  const DyadicInterval cancelled =
      DyadicInterval::exact(41) - DyadicInterval::exact(41);
  ASSERT_TRUE(cancelled.sign().has_value());
  EXPECT_EQ(*cancelled.sign(), 0);
}

/// Every filtered front end against the exact oracle, with the lockstep
/// cross-check armed so a filter/oracle disagreement throws.
TEST(FilteredFrontEnds, AgreeWithExactOracleOnTallOperands) {
  const FilterOptions armed{/*enabled=*/true, /*cross_check=*/true};
  const FilteredSign sign(armed);
  const FilteredCompare compare(armed);
  util::Xoshiro256 rng(20260812);
  for (int trial = 0; trial < 200; ++trial) {
    const Rational a = tall_rational(rng, 110);
    const Rational b = tall_rational(rng, 110);
    const Rational c = tall_rational(rng, 110);
    const Rational ab = a - b;
    const int diff_truth = ab.is_zero() ? 0 : (ab.is_negative() ? -1 : 1);
    EXPECT_EQ(sign.of_difference(a, b), diff_truth);
    const Rational linear = a - b * c;
    EXPECT_EQ(sign.of_linear(a, b, c),
              linear.is_zero() ? 0 : (linear.is_negative() ? -1 : 1));
    EXPECT_EQ(compare(a, b) < 0, a < b);
    EXPECT_EQ(compare.less(a, b), a < b);
  }
}

TEST(FilteredFrontEnds, RatioOrderingsMatchQuotients) {
  const FilterOptions armed{/*enabled=*/true, /*cross_check=*/true};
  const FilteredCompare compare(armed);
  util::Xoshiro256 rng(20260813);
  for (int trial = 0; trial < 100; ++trial) {
    const Rational p = tall_rational(rng, 110);
    Rational q = tall_rational(rng, 110);
    const Rational r = tall_rational(rng, 110);
    Rational s = tall_rational(rng, 110);
    if (q.is_negative()) q = -q;
    if (s.is_negative()) s = -s;
    const Rational lhs = p / q;
    const Rational rhs = r / s;
    const std::strong_ordering truth =
        lhs < rhs ? std::strong_ordering::less
                  : (rhs < lhs ? std::strong_ordering::greater
                               : std::strong_ordering::equal);
    EXPECT_EQ(compare.ratios(p, q, r, s), truth) << "trial=" << trial;
  }
}

/// Constructed exact ties: the interval must straddle, the exact fallback
/// must run (and count filter_exact_ties), and the answer must still be
/// the exact zero.
TEST(FilteredFrontEnds, ExactTiesFallBackAndCount) {
  util::PerfCounters::reset();
  const FilterOptions armed{/*enabled=*/true, /*cross_check=*/true};
  const FilteredSign sign(armed);
  const FilteredCompare compare(armed);
  // Γ − λ·w == 0 exactly at bracket height: λ = Γ/w with tall operands in
  // non-canonical form (a·w and w share no visible structure after the
  // products are materialized).
  const Rational a =
      Rational(BigInt(5).shifted_left(117) + BigInt(11),
               BigInt(1).shifted_left(119) + BigInt(7));
  const Rational w =
      Rational(BigInt(3), BigInt(1).shifted_left(120)) + Rational(9);
  EXPECT_EQ(sign.of_linear(a * w, a, w), 0);
  // Equal cross ratios: p/q == (p·s)/(q·s) for a tall scale s.
  const Rational scale(BigInt(7).shifted_left(118) + BigInt(5));
  EXPECT_EQ(compare.ratios(a * scale, scale, a * Rational(2), Rational(2)),
            std::strong_ordering::equal);
  // A polynomial that vanishes exactly at a tall rational root.
  const Rational root = Rational(BigInt(1).shifted_left(120) + BigInt(1),
                                 BigInt(3).shifted_left(119));
  const num::Polynomial p =
      num::Polynomial::linear(-root, Rational(1)) *
      num::Polynomial::linear(Rational(1), Rational(1));
  EXPECT_EQ(p.sign_at(root, armed), 0);
  const util::PerfSnapshot counters = util::PerfCounters::snapshot();
  EXPECT_GT(counters.filter_exact_ties, 0u);
  EXPECT_GT(counters.filter_fallbacks, 0u);
  // Ties are fallbacks by definition: every tie was first a straddle.
  EXPECT_LE(counters.filter_exact_ties, counters.filter_fallbacks);
}

void clear_engine_caches() {
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();
  game::PartitionMemo::instance().clear();
}

std::vector<game::DeviationOptimum> sweep_all(
    const std::vector<Graph>& rings, bool filtered) {
  bd::hot_path_config() = bd::HotPathConfig{};  // library defaults
  bd::hot_path_config().filtered_numerics = filtered;
  clear_engine_caches();
  game::DeviationSweep sweep;
  sweep.kinds = {game::DeviationKind::kSybil, game::DeviationKind::kMisreport,
                 game::DeviationKind::kCollusion};
  std::vector<game::DeviationOptimum> optima;
  for (const Graph& ring : rings) {
    for (const game::DeviationTask& task : sweep.tasks(ring)) {
      optima.push_back(sweep.run(ring, task));
    }
  }
  return optima;
}

/// The load-bearing end-to-end contract: with the filter on, every
/// deviation optimum — report, utility, honest utility, ratio — is
/// bit-identical to the pure exact pipeline, on every necklace up to
/// n = 6. The filter may only change how fast signs are decided, never
/// which signs are decided.
TEST(FilteredPipeline, BitIdenticalOptimaOnExhaustiveNecklaces) {
  ConfigGuard guard;
  for (std::size_t n = 3; n <= 6; ++n) {
    const std::vector<Graph> rings =
        exp::exhaustive_rings(n, /*max_weight=*/n <= 5 ? 3 : 2);
    const std::vector<game::DeviationOptimum> filtered =
        sweep_all(rings, /*filtered=*/true);
    const std::vector<game::DeviationOptimum> exact =
        sweep_all(rings, /*filtered=*/false);
    ASSERT_EQ(filtered.size(), exact.size());
    for (std::size_t i = 0; i < filtered.size(); ++i) {
      const std::string context =
          "n=" + std::to_string(n) + " task=" + std::to_string(i);
      EXPECT_EQ(filtered[i].t_star, exact[i].t_star) << context;
      EXPECT_EQ(filtered[i].utility, exact[i].utility) << context;
      EXPECT_EQ(filtered[i].honest_utility, exact[i].honest_utility)
          << context;
      EXPECT_EQ(filtered[i].ratio, exact[i].ratio) << context;
    }
  }
  clear_engine_caches();
}

/// The same necklace sweep under the lockstep cross-check: every filtered
/// answer re-derived exactly in place, any disagreement throws.
TEST(FilteredPipeline, CrossCheckCleanOnExhaustiveNecklaces) {
  ConfigGuard guard;
  bd::hot_path_config() = bd::HotPathConfig{};
  bd::hot_path_config().cross_check_filtered = true;
  clear_engine_caches();
  game::DeviationSweep sweep;
  sweep.kinds = {game::DeviationKind::kSybil, game::DeviationKind::kMisreport,
                 game::DeviationKind::kCollusion};
  for (std::size_t n = 4; n <= 5; ++n) {
    for (const Graph& ring : exp::exhaustive_rings(n, /*max_weight=*/2)) {
      for (const game::DeviationTask& task : sweep.tasks(ring)) {
        EXPECT_NO_THROW((void)sweep.run(ring, task));
      }
    }
  }
  clear_engine_caches();
}

}  // namespace
}  // namespace ringshare
