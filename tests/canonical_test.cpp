// Tests for the dihedral canonicalization layer: Booth's least rotation
// against a naive oracle, component discovery, invariance of the canonical
// form under rotation/reflection, and the metamorphic guarantee that the
// canonical memo cache never changes a decomposition.
#include "graph/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bd/allocation.hpp"
#include "bd/decomposition.hpp"
#include "bd/memo.hpp"
#include "graph/builders.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace ringshare::graph {
namespace {

/// O(n²) oracle: the lexicographically minimal rotation of `w`.
std::vector<Rational> naive_min_rotation(const std::vector<Rational>& w) {
  const std::size_t n = w.size();
  std::vector<Rational> best;
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<Rational> candidate;
    candidate.reserve(n);
    for (std::size_t i = 0; i < n; ++i) candidate.push_back(w[(k + i) % n]);
    if (k == 0 || std::lexicographical_compare(candidate.begin(),
                                               candidate.end(), best.begin(),
                                               best.end()))
      best = std::move(candidate);
  }
  return best;
}

std::vector<Rational> rotation_at(const std::vector<Rational>& w,
                                  std::size_t k) {
  std::vector<Rational> out;
  out.reserve(w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    out.push_back(w[(k + i) % w.size()]);
  return out;
}

TEST(LeastRotation, MatchesNaiveOracle) {
  util::Xoshiro256 rng(171);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    std::vector<Rational> w;
    w.reserve(n);
    // A tiny alphabet forces heavy tie-handling inside Booth's algorithm.
    for (std::size_t i = 0; i < n; ++i)
      w.emplace_back(rng.uniform_int(1, 3));
    const std::size_t k = least_rotation_index(w);
    ASSERT_LT(k, n);
    EXPECT_EQ(rotation_at(w, k), naive_min_rotation(w)) << "trial " << trial;
  }
}

TEST(PathCycleComponents, RejectsBranchingGraphs) {
  util::Xoshiro256 rng(88);
  const Graph star = make_star(random_integer_weights(5, rng, 9));
  EXPECT_FALSE(path_cycle_components(star).has_value());
  EXPECT_FALSE(canonicalize_ring_graph(star).has_value());
}

TEST(PathCycleComponents, WalksUnionOfPathAndCycle) {
  // Vertices 0..2: path; 3..6: 4-cycle; 7: isolated.
  Graph g(8);
  for (Vertex v = 0; v < 8; ++v) g.set_weight(v, Rational(v + 1));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(6, 3);
  const auto components = path_cycle_components(g);
  ASSERT_TRUE(components.has_value());
  ASSERT_EQ(components->size(), 3u);
  for (const PathComponent& component : *components) {
    // Traversal validity: consecutive vertices adjacent; cycles also wrap.
    for (std::size_t i = 0; i + 1 < component.order.size(); ++i)
      EXPECT_TRUE(g.has_edge(component.order[i], component.order[i + 1]));
    if (component.cycle) {
      EXPECT_GE(component.order.size(), 3u);
      EXPECT_TRUE(g.has_edge(component.order.back(), component.order.front()));
    }
  }
  EXPECT_EQ((*components)[0].order.size(), 3u);
  EXPECT_FALSE((*components)[0].cycle);
  EXPECT_EQ((*components)[1].order.size(), 4u);
  EXPECT_TRUE((*components)[1].cycle);
  EXPECT_EQ((*components)[2].order.size(), 1u);
  EXPECT_FALSE((*components)[2].cycle);
}

/// Weight sequence along the canonical positions.
std::vector<Rational> canonical_weights(const Graph& g,
                                        const CanonicalStructure& canonical) {
  std::vector<Rational> out;
  out.reserve(canonical.to_original.size());
  for (const Vertex v : canonical.to_original) out.push_back(g.weight(v));
  return out;
}

TEST(CanonicalizeRingGraph, InvariantUnderRotationAndReflection) {
  util::Xoshiro256 rng(303);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    std::vector<Rational> weights;
    for (std::size_t i = 0; i < n; ++i)
      weights.emplace_back(rng.uniform_int(1, 6));

    const Graph base = make_ring(weights);
    const auto base_canonical = canonicalize_ring_graph(base);
    ASSERT_TRUE(base_canonical.has_value());
    const auto base_sequence = canonical_weights(base, *base_canonical);

    for (int reflect = 0; reflect < 2; ++reflect) {
      for (std::size_t shift = 0; shift < n; ++shift) {
        std::vector<Rational> variant = weights;
        if (reflect) std::reverse(variant.begin(), variant.end());
        std::rotate(variant.begin(),
                    variant.begin() + static_cast<std::ptrdiff_t>(shift),
                    variant.end());
        const Graph g = make_ring(variant);
        const auto canonical = canonicalize_ring_graph(g);
        ASSERT_TRUE(canonical.has_value());
        EXPECT_EQ(canonical->components, base_canonical->components);
        EXPECT_EQ(canonical_weights(g, *canonical), base_sequence)
            << "trial " << trial << " shift " << shift << " reflect "
            << reflect;
        // Keys must collide exactly.
        EXPECT_EQ(bd::canonical_fingerprint(g, *canonical).words,
                  bd::canonical_fingerprint(base, *base_canonical).words);
      }
    }
  }
}

/// Restore the ambient config after each mutation-heavy test.
class ConfigGuard {
 public:
  ConfigGuard() : saved_(bd::hot_path_config()) {}
  ~ConfigGuard() { bd::hot_path_config() = saved_; }

 private:
  bd::HotPathConfig saved_;
};

/// Decompose `g` and project the observable mechanism outputs.
struct Observed {
  std::vector<Rational> alphas;
  std::vector<std::vector<Vertex>> bottlenecks;
  std::vector<Rational> utilities;
};

Observed observe(const Graph& g) {
  const bd::Decomposition decomposition(g);
  EXPECT_TRUE(bd::proposition3_violations(g, decomposition).empty());
  Observed out;
  for (const bd::BottleneckPair& pair : decomposition.pairs()) {
    out.alphas.push_back(pair.alpha);
    out.bottlenecks.push_back(pair.b);
  }
  const bd::Allocation allocation = bd::bd_allocation(decomposition);
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    out.utilities.push_back(allocation.utility(v));
  return out;
}

// The satellite differential test: decomposing every rotation/reflection of
// random ring instances with the canonical cache ON must give bit-identical
// alphas, bottlenecks, and utilities to the cache-OFF engine — even though
// the ON engine answers most of them from translated cache entries.
TEST(CanonicalCache, RotatedDecompositionsBitIdentical) {
  ConfigGuard guard;
  util::Xoshiro256 rng(555);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<Rational> weights;
    for (std::size_t i = 0; i < n; ++i)
      weights.emplace_back(rng.uniform_int(1, 9));

    for (int reflect = 0; reflect < 2; ++reflect) {
      for (std::size_t shift = 0; shift < n; ++shift) {
        std::vector<Rational> variant = weights;
        if (reflect) std::reverse(variant.begin(), variant.end());
        std::rotate(variant.begin(),
                    variant.begin() + static_cast<std::ptrdiff_t>(shift),
                    variant.end());
        const Graph g = make_ring(variant);

        bd::hot_path_config() = bd::HotPathConfig{};  // everything on
        bd::BottleneckCache::instance().clear();
        bd::DecompositionCache::instance().clear();
        const Observed cold = observe(g);      // populates the caches
        const Observed cached = observe(g);    // served from the peel cache

        bd::hot_path_config().memo_cache = false;
        bd::hot_path_config().canonical_cache = false;
        const Observed reference = observe(g);

        EXPECT_EQ(cold.alphas, reference.alphas);
        EXPECT_EQ(cold.bottlenecks, reference.bottlenecks);
        EXPECT_EQ(cold.utilities, reference.utilities);
        EXPECT_EQ(cached.alphas, reference.alphas);
        EXPECT_EQ(cached.bottlenecks, reference.bottlenecks);
        EXPECT_EQ(cached.utilities, reference.utilities);
      }
    }
  }
}

// Rotations of one ring must share cache entries: decompose a ring once,
// then decompose every rotation/reflection and require zero additional
// top-level misses (the peel subgraphs also hit, transposed).
TEST(CanonicalCache, RotationsHitTheSameEntries) {
  ConfigGuard guard;
  bd::hot_path_config() = bd::HotPathConfig{};
  // The whole-decomposition peel cache would serve these before any
  // bottleneck lookup happens; pin it off to observe the bottleneck memo.
  bd::hot_path_config().decomposition_cache = false;
  bd::BottleneckCache::instance().clear();

  std::vector<Rational> weights = {Rational(3), Rational(1), Rational(4),
                                   Rational(1), Rational(5), Rational(9),
                                   Rational(2)};
  (void)observe(make_ring(weights));

  util::PerfCounters::reset();
  const std::size_t n = weights.size();
  for (int reflect = 0; reflect < 2; ++reflect) {
    for (std::size_t shift = 0; shift < n; ++shift) {
      std::vector<Rational> variant = weights;
      if (reflect) std::reverse(variant.begin(), variant.end());
      std::rotate(variant.begin(),
                  variant.begin() + static_cast<std::ptrdiff_t>(shift),
                  variant.end());
      (void)observe(make_ring(variant));
    }
  }
  const util::PerfSnapshot snapshot = util::PerfCounters::snapshot();
  EXPECT_EQ(snapshot.bottleneck_cache_misses, 0u);
  EXPECT_GT(snapshot.bottleneck_cache_hits, 0u);
}

// ROADMAP regression: the canonical fingerprint normalizes weights by the
// total weight, so uniformly scaled copies of an instance — whose bottleneck
// sets and α values are identical — share one cache entry instead of
// missing. Decompose a ring once, then decompose scaled (and scaled+rotated)
// copies and require zero additional misses, with utilities scaling exactly
// linearly.
TEST(CanonicalCache, WeightScaledCopiesHitTheSameEntries) {
  ConfigGuard guard;
  bd::hot_path_config() = bd::HotPathConfig{};
  bd::hot_path_config().decomposition_cache = false;  // observe the memo
  bd::BottleneckCache::instance().clear();

  const std::vector<Rational> weights = {Rational(3), Rational(1), Rational(4),
                                         Rational(1), Rational(5), Rational(9),
                                         Rational(2)};
  const Observed base = observe(make_ring(weights));

  util::PerfCounters::reset();
  const Rational factors[] = {Rational(2), Rational(7, 3), Rational(1, 5)};
  for (const Rational& factor : factors) {
    std::vector<Rational> scaled;
    for (const Rational& w : weights) scaled.push_back(w * factor);
    const Observed observed = observe(make_ring(scaled));
    EXPECT_EQ(observed.alphas, base.alphas);         // α is scale-invariant
    EXPECT_EQ(observed.bottlenecks, base.bottlenecks);
    ASSERT_EQ(observed.utilities.size(), base.utilities.size());
    for (std::size_t v = 0; v < base.utilities.size(); ++v)
      EXPECT_EQ(observed.utilities[v], base.utilities[v] * factor);

    // Scaling composes with the dihedral identification: a rotated scaled
    // copy hits too.
    std::vector<Rational> rotated = scaled;
    std::rotate(rotated.begin(), rotated.begin() + 3, rotated.end());
    (void)observe(make_ring(rotated));
  }
  const util::PerfSnapshot snapshot = util::PerfCounters::snapshot();
  EXPECT_EQ(snapshot.bottleneck_cache_misses, 0u);
  EXPECT_GT(snapshot.bottleneck_cache_hits, 0u);
}

// The whole-decomposition peel cache (HotPathConfig::decomposition_cache):
// after decomposing a ring once, every rotation, reflection, and uniformly
// scaled copy must be answered by a single peel-cache hit — zero bottleneck
// lookups of any kind — with bit-identical pair structure and α sequence,
// and utilities drawn from the actual (scaled) weights.
TEST(CanonicalCache, PeelCacheServesDihedralAndScaledCopies) {
  ConfigGuard guard;
  bd::hot_path_config() = bd::HotPathConfig{};
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();

  const std::vector<Rational> weights = {Rational(6), Rational(1), Rational(4),
                                         Rational(1), Rational(5), Rational(8),
                                         Rational(2)};
  const Observed base = observe(make_ring(weights));
  const std::size_t n = weights.size();

  util::PerfCounters::reset();
  std::size_t copies = 0;
  const Rational factors[] = {Rational(1), Rational(3), Rational(7, 2)};
  for (const Rational& factor : factors) {
    for (int reflect = 0; reflect < 2; ++reflect) {
      for (std::size_t shift = 0; shift < n; ++shift) {
        std::vector<Rational> variant = weights;
        if (reflect) std::reverse(variant.begin(), variant.end());
        std::rotate(variant.begin(),
                    variant.begin() + static_cast<std::ptrdiff_t>(shift),
                    variant.end());
        for (Rational& w : variant) w = w * factor;
        const Observed observed = observe(make_ring(variant));
        ++copies;
        EXPECT_EQ(observed.alphas, base.alphas);
        ASSERT_EQ(observed.utilities.size(), base.utilities.size());
        // Utilities come from this copy's weights: rotated positions permute
        // them, scaling multiplies them; the total scales exactly.
        Rational total(0);
        Rational base_total(0);
        for (std::size_t v = 0; v < n; ++v) {
          total = total + observed.utilities[v];
          base_total = base_total + base.utilities[v];
        }
        EXPECT_EQ(total, base_total * factor);
      }
    }
  }
  const util::PerfSnapshot snapshot = util::PerfCounters::snapshot();
  EXPECT_EQ(snapshot.peel_cache_hits, copies);
  EXPECT_EQ(snapshot.bottleneck_cache_hits, 0u);
  EXPECT_EQ(snapshot.bottleneck_cache_misses, 0u);
}

}  // namespace
}  // namespace ringshare::graph
