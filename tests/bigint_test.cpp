// Unit tests for the arbitrary-precision integer substrate.
#include "numeric/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/rng.hpp"

namespace ringshare::num {
namespace {

TEST(BigInt, DefaultIsZero) {
  const BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.to_int64(), 0);
}

TEST(BigInt, Int64RoundTrip) {
  for (const std::int64_t value :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{42},
        std::int64_t{-987654321}, std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    const BigInt big(value);
    EXPECT_TRUE(big.fits_int64()) << value;
    EXPECT_EQ(big.to_int64(), value);
    EXPECT_EQ(big.to_string(), std::to_string(value));
  }
}

TEST(BigInt, FromStringParsesSignsAndZeros) {
  EXPECT_EQ(BigInt::from_string("0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("-0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("+17"), BigInt(17));
  EXPECT_EQ(BigInt::from_string("-00012"), BigInt(-12));
  EXPECT_EQ(BigInt::from_string("123456789012345678901234567890").to_string(),
            "123456789012345678901234567890");
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW((void)BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("12a3"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string(" 1"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + b).to_string(), "36893488147419103230");
}

TEST(BigInt, SubtractionSignHandling) {
  EXPECT_EQ(BigInt(5) - BigInt(7), BigInt(-2));
  EXPECT_EQ(BigInt(-5) - BigInt(-7), BigInt(2));
  EXPECT_EQ(BigInt(5) - BigInt(5), BigInt(0));
  const BigInt big = BigInt::from_string("100000000000000000000");
  EXPECT_EQ((big - (big - BigInt(1))).to_string(), "1");
}

TEST(BigInt, MultiplicationMatchesKnownProducts) {
  EXPECT_EQ((BigInt(0) * BigInt(12345)).to_string(), "0");
  EXPECT_EQ((BigInt(-3) * BigInt(4)).to_string(), "-12");
  EXPECT_EQ((BigInt(-3) * BigInt(-4)).to_string(), "12");
  const BigInt a = BigInt::from_string("12345678901234567890");
  const BigInt b = BigInt::from_string("98765432109876543210");
  EXPECT_EQ((a * b).to_string(),
            "1219326311370217952237463801111263526900");
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_int64(), 1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW((void)(BigInt(1) / BigInt(0)), std::domain_error);
  EXPECT_THROW((void)(BigInt(1) % BigInt(0)), std::domain_error);
}

TEST(BigInt, MultiLimbLongDivision) {
  const BigInt a = BigInt::from_string("340282366920938463463374607431768211456");  // 2^128
  const BigInt b = BigInt::from_string("18446744073709551616");  // 2^64
  EXPECT_EQ((a / b).to_string(), "18446744073709551616");
  EXPECT_EQ((a % b).to_string(), "0");
  const BigInt c = a + BigInt(12345);
  EXPECT_EQ((c % b).to_string(), "12345");
}

TEST(BigInt, DifferentialDivModAgainstInt128) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.uniform_int(-1000000000000LL, 1000000000000LL);
    std::int64_t y = rng.uniform_int(-1000000, 1000000);
    if (y == 0) y = 1;
    const auto [q, r] = BigInt::div_mod(BigInt(x), BigInt(y));
    EXPECT_EQ(q.to_int64(), x / y) << x << " / " << y;
    EXPECT_EQ(r.to_int64(), x % y) << x << " % " << y;
  }
}

TEST(BigInt, DifferentialArithmeticAgainstInt128) {
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.uniform_int(-2000000000LL, 2000000000LL);
    const std::int64_t y = rng.uniform_int(-2000000000LL, 2000000000LL);
    EXPECT_EQ((BigInt(x) + BigInt(y)).to_int64(), x + y);
    EXPECT_EQ((BigInt(x) - BigInt(y)).to_int64(), x - y);
    const __int128 product = static_cast<__int128>(x) * y;
    const BigInt big_product = BigInt(x) * BigInt(y);
    EXPECT_EQ(big_product.to_string(),
              (BigInt(x) * BigInt(y)).to_string());
    // Verify against int128 via string of the low/high decomposition.
    const bool negative = product < 0;
    unsigned __int128 magnitude =
        negative ? static_cast<unsigned __int128>(-product)
                 : static_cast<unsigned __int128>(product);
    std::string digits;
    if (magnitude == 0) digits = "0";
    while (magnitude > 0) {
      digits.insert(digits.begin(),
                    static_cast<char>('0' + static_cast<int>(magnitude % 10)));
      magnitude /= 10;
    }
    if (negative && digits != "0") digits.insert(digits.begin(), '-');
    EXPECT_EQ(big_product.to_string(), digits);
  }
}

TEST(BigInt, MultiLimbDivModInvariant) {
  // Stress Knuth algorithm D (including the rare add-back correction):
  // random wide operands must satisfy a = q·b + r with 0 <= |r| < |b|.
  util::Xoshiro256 rng(47);
  for (int trial = 0; trial < 400; ++trial) {
    BigInt a(1);
    const int a_limbs = static_cast<int>(rng.uniform_int(2, 8));
    for (int i = 0; i < a_limbs; ++i) {
      a = a * BigInt::from_uint64(rng());
      a += BigInt::from_uint64(rng());
    }
    BigInt b(1);
    const int b_limbs = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < b_limbs; ++i) {
      b = b * BigInt::from_uint64(rng() | 1);
    }
    if (rng() % 2) a = -a;
    if (rng() % 2) b = -b;
    const auto [q, r] = BigInt::div_mod(a, b);
    EXPECT_EQ(q * b + r, a) << "trial " << trial;
    EXPECT_LT(r.abs(), b.abs()) << "trial " << trial;
    if (!r.is_zero()) EXPECT_EQ(r.sign(), a.sign()) << "trial " << trial;
  }
}

TEST(BigInt, KnuthDBoundaryQuotientDigits) {
  // Deterministic boundary sweep for algorithm D: divisors with the top
  // limb's high bit set and near-maximal quotient digits are exactly the
  // regime where the trial digit q̂ overestimates and the rare add-back
  // correction fires. Construct a = q·v + r with known (q, r) and verify
  // the division recovers them.
  const BigInt beta = BigInt(1).shifted_left(32);
  for (const std::uint64_t v_hi : {0x80000000ULL, 0x80000001ULL,
                                   0xFFFFFFFFULL}) {
    for (const std::uint64_t v_lo : {0ULL, 1ULL, 0xFFFFFFFFULL}) {
      const BigInt v = BigInt::from_uint64(v_hi) * beta +
                       BigInt::from_uint64(v_lo);
      for (const std::uint64_t q_digit : {0xFFFFFFFFULL, 0xFFFFFFFEULL,
                                          0x80000000ULL}) {
        // Multi-digit quotient with the stressing digit in both positions.
        const BigInt q = BigInt::from_uint64(q_digit) * beta +
                         BigInt::from_uint64(q_digit);
        for (const BigInt& r :
             {BigInt(0), BigInt(1), v - BigInt(1)}) {
          const BigInt a = q * v + r;
          const auto [quotient, remainder] = BigInt::div_mod(a, v);
          EXPECT_EQ(quotient, q)
              << "v_hi=" << v_hi << " v_lo=" << v_lo << " q=" << q_digit;
          EXPECT_EQ(remainder, r);
        }
      }
    }
  }
}

TEST(BigInt, DivisorWithSmallTopLimbExercisesNormalization) {
  // Divisors whose top limb is 1 maximize the normalization shift in
  // algorithm D.
  const BigInt b = BigInt(1).shifted_left(64) + BigInt(5);  // top limb 1
  const BigInt a = b * BigInt::from_string("987654321987654321") + BigInt(17);
  const auto [q, r] = BigInt::div_mod(a, b);
  EXPECT_EQ(q.to_string(), "987654321987654321");
  EXPECT_EQ(r.to_int64(), 17);
}

TEST(BigInt, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt::from_string("10000000000000000000"));
  EXPECT_LT(BigInt::from_string("-10000000000000000000"), BigInt(-1));
  EXPECT_EQ(BigInt(3) <=> BigInt(3), std::strong_ordering::equal);
}

TEST(BigInt, GcdMatchesEuclid) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(7), BigInt(0)).to_int64(), 7);
  EXPECT_EQ(BigInt::gcd(BigInt(1000000007), BigInt(998244353)).to_int64(), 1);
}

TEST(BigInt, ShiftLeftMultipliesByPowersOfTwo) {
  EXPECT_EQ(BigInt(1).shifted_left(0).to_int64(), 1);
  EXPECT_EQ(BigInt(1).shifted_left(10).to_int64(), 1024);
  EXPECT_EQ(BigInt(3).shifted_left(33).to_string(), "25769803776");
  EXPECT_EQ(BigInt(-1).shifted_left(64).to_string(), "-18446744073709551616");
}

TEST(BigInt, BitCount) {
  EXPECT_EQ(BigInt(0).bit_count(), 0u);
  EXPECT_EQ(BigInt(1).bit_count(), 1u);
  EXPECT_EQ(BigInt(255).bit_count(), 8u);
  EXPECT_EQ(BigInt(256).bit_count(), 9u);
  EXPECT_EQ(BigInt(1).shifted_left(100).bit_count(), 101u);
}

TEST(BigInt, FitsInt64Boundaries) {
  EXPECT_TRUE(BigInt(std::numeric_limits<std::int64_t>::max()).fits_int64());
  EXPECT_TRUE(BigInt(std::numeric_limits<std::int64_t>::min()).fits_int64());
  const BigInt max64(std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE((max64 + BigInt(1)).fits_int64());
  const BigInt min64(std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE((min64 - BigInt(1)).fits_int64());
  EXPECT_THROW((void)(max64 + BigInt(1)).to_int64(), std::overflow_error);
}

TEST(BigInt, IsqrtExactAndFloor) {
  EXPECT_EQ(BigInt::isqrt(BigInt(0)).to_int64(), 0);
  EXPECT_EQ(BigInt::isqrt(BigInt(1)).to_int64(), 1);
  EXPECT_EQ(BigInt::isqrt(BigInt(15)).to_int64(), 3);
  EXPECT_EQ(BigInt::isqrt(BigInt(16)).to_int64(), 4);
  EXPECT_EQ(BigInt::isqrt(BigInt(17)).to_int64(), 4);
  const BigInt big = BigInt::from_string("123456789123456789");
  EXPECT_EQ(BigInt::isqrt(big * big), big);
  EXPECT_EQ(BigInt::isqrt(big * big + BigInt(1)), big);
  EXPECT_EQ(BigInt::isqrt(big * big - BigInt(1)), big - BigInt(1));
  EXPECT_THROW((void)BigInt::isqrt(BigInt(-1)), std::domain_error);
}

TEST(BigInt, PerfectSquareDetection) {
  EXPECT_TRUE(BigInt::is_perfect_square(BigInt(0)));
  EXPECT_TRUE(BigInt::is_perfect_square(BigInt(1)));
  EXPECT_TRUE(BigInt::is_perfect_square(BigInt(144)));
  EXPECT_FALSE(BigInt::is_perfect_square(BigInt(2)));
  EXPECT_FALSE(BigInt::is_perfect_square(BigInt(-4)));
  const BigInt big = BigInt::from_string("987654321987654321");
  EXPECT_TRUE(BigInt::is_perfect_square(big * big));
  EXPECT_FALSE(BigInt::is_perfect_square(big * big + BigInt(1)));
}

TEST(BigInt, IsqrtRandomizedFloorProperty) {
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 300; ++i) {
    const std::int64_t x = rng.uniform_int(0, 4000000000LL);
    const BigInt root = BigInt::isqrt(BigInt(x));
    EXPECT_LE((root * root).to_int64(), x);
    EXPECT_GT(((root + BigInt(1)) * (root + BigInt(1))).to_int64(), x);
  }
}

TEST(BigInt, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(0).to_double(), 0.0);
  EXPECT_DOUBLE_EQ(BigInt(-5).to_double(), -5.0);
  EXPECT_DOUBLE_EQ(BigInt::from_string("1000000000000").to_double(), 1e12);
}

TEST(BigInt, HashDistinguishesSignAndValue) {
  EXPECT_NE(BigInt(1).hash(), BigInt(-1).hash());
  EXPECT_NE(BigInt(1).hash(), BigInt(2).hash());
  EXPECT_EQ(BigInt(42).hash(), (BigInt(40) + BigInt(2)).hash());
}

TEST(BigInt, NegationAndAbs) {
  EXPECT_EQ((-BigInt(5)).to_int64(), -5);
  EXPECT_EQ((-BigInt(0)).to_int64(), 0);
  EXPECT_FALSE((-BigInt(0)).is_negative());
  EXPECT_EQ(BigInt(-5).abs().to_int64(), 5);
  EXPECT_EQ(BigInt(5).abs().to_int64(), 5);
}

}  // namespace
}  // namespace ringshare::num
