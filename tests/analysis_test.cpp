// Tests for the lemma/proposition verifiers: Prop 11 (α_v(x) cases),
// Prop 12 (pair merge/split), Lemma 13 (unimpacted pairs), Lemma 14/20
// (initial forms), and the Adjusting Technique.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/adjusting.hpp"
#include "analysis/forms.hpp"
#include "analysis/lemma13.hpp"
#include "analysis/prop11.hpp"
#include "analysis/prop12.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::analysis {
namespace {

using game::MisreportAnalysis;
using graph::make_ring;
using graph::make_star;

TEST(Prop11, CaseB1OnHeavyNeighborStar) {
  // Hub with heavy leaves stays C class for every report: Case B-1.
  const graph::Graph g = make_star({Rational(2), Rational(9), Rational(9)});
  const MisreportAnalysis analysis(g, 0);
  const Prop11Report report = verify_prop11(analysis);
  EXPECT_EQ(report.alpha_case, AlphaCase::kB1);
  EXPECT_TRUE(report.violations.empty()) << report.violations.front();
}

TEST(Prop11, CaseB2OnLightLeafStar) {
  // Leaves against a light hub stay the bottleneck (B class) for every
  // report: α({leaves}) = w_hub/(x + 4) < 1 throughout.
  const graph::Graph g = make_star({Rational(1), Rational(4), Rational(4)});
  const MisreportAnalysis analysis(g, 1);
  const Prop11Report report = verify_prop11(analysis);
  EXPECT_EQ(report.alpha_case, AlphaCase::kB2);
  EXPECT_TRUE(report.violations.empty()) << report.violations.front();
}

TEST(Prop11, CaseB3CrossoverExists) {
  // Two vertices of equal weight: reporting less than the partner makes v
  // a B-class vertex... reporting x crosses α = 1 at x = w_partner.
  const graph::Graph g =
      graph::make_path({Rational(4), Rational(2)});
  const MisreportAnalysis analysis(g, 0);
  const Prop11Report report = verify_prop11(analysis);
  EXPECT_EQ(report.alpha_case, AlphaCase::kB3);
  EXPECT_TRUE(report.violations.empty()) << report.violations.front();
}

TEST(Prop11, HoldsOnRandomRings) {
  util::Xoshiro256 rng(701);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 6));
    const graph::Vertex v =
        static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const Prop11Report report = verify_prop11(MisreportAnalysis(g, v), 12);
    EXPECT_TRUE(report.violations.empty())
        << "trial " << trial << ": " << report.violations.front();
  }
}

TEST(Prop12, MergeRelationDetectsAdjacentUnion) {
  Signature single = {{{0, 1}, {2, 3}}, {{4, 5}, {6}}};
  Signature split = {{{0, 1}, {2, 3}}, {{4}, {6}}, {{5}, {}}};
  // {4,5} = {4} ∪ {5}, {6} = {6} ∪ {}.
  EXPECT_EQ(merge_relation(single, split), std::optional<std::size_t>{1});
  EXPECT_EQ(merge_relation(single, single), std::nullopt);
  Signature wrong = {{{0}, {2, 3}}, {{4}, {6}}, {{5}, {}}};
  EXPECT_EQ(merge_relation(single, wrong), std::nullopt);
}

TEST(Prop12, HoldsOnRandomRingMisreports) {
  util::Xoshiro256 rng(709);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 6));
    const graph::Vertex v =
        static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const MisreportAnalysis analysis(g, v);
    const Prop12Report report =
        verify_prop12(analysis.parametrized(), analysis.partition(), {v});
    EXPECT_TRUE(report.violations.empty())
        << "trial " << trial << ": " << report.violations.front();
  }
}

TEST(StructureChanges, DiagonalPartitionIsWellFormed) {
  // Proposition 12's single-merge/split shape is only claimed for
  // single-weight changes; the diagonal moves both copies at once and can
  // fire compound events — including reshuffles of pairs that contain
  // neither copy, whenever the copies' pair α crosses another pair's α and
  // the peeling ORDER flips (the reason Lemma 13 carries α-threshold
  // conditions). What must hold regardless: adjacent pieces genuinely
  // differ, every piece's signature partitions all vertices, and the
  // copies sit in exactly one pair each.
  util::Xoshiro256 rng(711);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 6));
    const graph::Vertex v =
        static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const game::ParametrizedGraph family = game::sybil_family(g, v);
    const game::StructurePartition partition =
        game::find_structure_partition(family);
    const std::size_t path_n = family.base().vertex_count();
    for (std::size_t i = 0; i + 1 < partition.piece_count(); ++i) {
      EXPECT_NE(partition.piece_signatures[i],
                partition.piece_signatures[i + 1])
          << "trial " << trial << " breakpoint " << i;
    }
    for (const game::Signature& sig : partition.piece_signatures) {
      std::vector<int> seen(path_n, 0);
      for (const auto& [b, c] : sig) {
        for (const graph::Vertex u : b) seen[u] |= 1;
        for (const graph::Vertex u : c) seen[u] |= 2;
      }
      for (std::size_t u = 0; u < path_n; ++u) {
        EXPECT_NE(seen[u], 0) << "trial " << trial << " vertex " << u;
      }
      // Each copy appears in exactly one pair.
      for (const graph::Vertex copy :
           {graph::Vertex{0}, static_cast<graph::Vertex>(path_n - 1)}) {
        int memberships = 0;
        for (const auto& [b, c] : sig) {
          if (std::binary_search(b.begin(), b.end(), copy) ||
              std::binary_search(c.begin(), c.end(), copy)) {
            ++memberships;
          }
        }
        EXPECT_EQ(memberships, 1) << "trial " << trial;
      }
    }
  }
}

TEST(Lemma13, HoldsWhenClassIsStable) {
  util::Xoshiro256 rng(719);
  int applicable = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 6));
    const graph::Vertex v =
        static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const MisreportAnalysis analysis(g, v);
    // Test over the upper half of the report range (class is most stable
    // near the truthful report).
    const Rational a = g.weight(v) * Rational(1, 2);
    const Rational b = g.weight(v);
    const Lemma13Report report =
        verify_lemma13(analysis.parametrized(), v, a, b);
    if (report.applicable) {
      ++applicable;
      EXPECT_TRUE(report.violations.empty())
          << "trial " << trial << ": " << report.violations.front();
    }
  }
  EXPECT_GT(applicable, 0);  // the premise must trigger somewhere
}

TEST(Forms, ClassifiesHonestSplitOnRandomRings) {
  // Lemma 14 / Lemma 20: every honest split path matches one of the four
  // documented forms.
  util::Xoshiro256 rng(727);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 6));
    for (graph::Vertex v = 0; v < n; ++v) {
      const FormReport report = classify_initial_form(g, v);
      EXPECT_NE(report.form, InitialForm::kUnclassified)
          << "trial " << trial << " v" << v << ": "
          << (report.violations.empty() ? "?" : report.violations.front());
      EXPECT_TRUE(report.violations.empty())
          << "trial " << trial << " v" << v << ": "
          << report.violations.front();
    }
  }
}

TEST(Forms, UniformOddRingIsCaseC1) {
  // Single α = 1 pair on an odd ring: Lemma 14's first case.
  const graph::Graph g = make_ring(std::vector<Rational>(5, Rational(1)));
  const FormReport report = classify_initial_form(g, 0);
  EXPECT_EQ(report.form, InitialForm::kC1);
  EXPECT_TRUE(report.violations.empty()) << report.violations.front();
}

TEST(Adjusting, NoOpWhenCopiesInDifferentPairs) {
  // Alternating even ring: v's copies land in different α... or the same —
  // either way the call must be consistent and violation-free.
  const graph::Graph g = make_ring({Rational(1), Rational(5), Rational(1),
                                    Rational(5)});
  const auto [w1, w2] = game::honest_split_weights(g, 0);
  const AdjustingResult result =
      apply_adjusting_technique(g, 0, w1, g.weight(0));
  EXPECT_TRUE(result.violations.empty()) << result.violations.front();
}

TEST(Adjusting, InvariantsOnRandomRings) {
  util::Xoshiro256 rng(733);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 5));
    const graph::Vertex v =
        static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const auto [w1_0, w2_0] = game::honest_split_weights(g, v);
    const AdjustingResult result =
        apply_adjusting_technique(g, v, w1_0, g.weight(v));
    EXPECT_TRUE(result.violations.empty())
        << "trial " << trial << ": " << result.violations.front();
    EXPECT_EQ(result.adjusted_w1 + result.adjusted_w2, g.weight(v));
    EXPECT_GE(result.adjusted_w1, w1_0);
  }
}

TEST(Adjusting, RequiresOrientedInput) {
  const graph::Graph g = make_ring({Rational(4), Rational(1), Rational(2),
                                    Rational(3)});
  EXPECT_THROW(
      (void)apply_adjusting_technique(g, 0, Rational(3), Rational(1)),
      std::invalid_argument);
}

}  // namespace
}  // namespace ringshare::analysis
