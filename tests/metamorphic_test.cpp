// Metamorphic properties: transformations of an instance with a known
// effect on the output. These catch whole classes of bugs (unit errors,
// index mix-ups) that fixed oracles cannot.
//
//   * uniform weight scaling: B(c·w) = B(w), α invariant, utilities scale
//     by c, incentive ratios invariant;
//   * ring rotation: everything commutes with the relabeling;
//   * ring reflection: likewise.
#include <gtest/gtest.h>

#include "bd/allocation.hpp"
#include "bd/decomposition.hpp"
#include "game/sybil_ring.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare {
namespace {

using game::Rational;
using graph::Graph;
using graph::make_ring;
using graph::Vertex;

std::vector<Rational> scaled(const std::vector<Rational>& weights,
                             const Rational& factor) {
  std::vector<Rational> out;
  out.reserve(weights.size());
  for (const Rational& w : weights) out.push_back(w * factor);
  return out;
}

std::vector<Rational> rotated(const std::vector<Rational>& weights,
                              std::size_t shift) {
  std::vector<Rational> out;
  const std::size_t n = weights.size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(weights[(i + shift) % n]);
  return out;
}

std::vector<Rational> reflected(const std::vector<Rational>& weights) {
  return {weights.rbegin(), weights.rend()};
}

TEST(Metamorphic, ScalingLeavesStructureFixesUtilitiesLinearly) {
  util::Xoshiro256 rng(1201);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const auto weights = graph::random_integer_weights(n, rng, 9);
    const Rational factor(rng.uniform_int(2, 9), rng.uniform_int(1, 5));

    const bd::Decomposition base(make_ring(weights));
    const bd::Decomposition scaled_up(make_ring(scaled(weights, factor)));

    ASSERT_EQ(base.pair_count(), scaled_up.pair_count()) << "trial " << trial;
    EXPECT_EQ(base.signature(), scaled_up.signature());
    for (std::size_t i = 0; i < base.pair_count(); ++i) {
      EXPECT_EQ(base.pairs()[i].alpha, scaled_up.pairs()[i].alpha);
    }
    for (Vertex v = 0; v < n; ++v) {
      EXPECT_EQ(scaled_up.utility(v), base.utility(v) * factor)
          << "trial " << trial << " v" << v;
    }
  }
}

TEST(Metamorphic, ScalingLeavesSybilRatioInvariant) {
  util::Xoshiro256 rng(1203);
  game::SybilOptions options;
  options.samples_per_piece = 12;
  options.refinement_rounds = 12;
  for (int trial = 0; trial < 4; ++trial) {
    const auto weights = graph::random_integer_weights(5, rng, 8);
    const Rational factor(7, 3);
    const Vertex v = static_cast<Vertex>(rng.uniform_int(0, 4));
    const auto base =
        game::optimize_sybil_split(make_ring(weights), v, options);
    const auto scaled_up = game::optimize_sybil_split(
        make_ring(scaled(weights, factor)), v, options);
    // The optimizer's continuous search lands on slightly different (both
    // near-optimal, exactly-evaluated) splits, so the ratios agree only up
    // to search resolution; the honest utility scales exactly.
    EXPECT_NEAR(base.ratio.to_double(), scaled_up.ratio.to_double(), 1e-9)
        << "trial " << trial;
    EXPECT_EQ(scaled_up.honest_utility, base.honest_utility * factor);
    // Cross-check at matched splits: scaling the SAME split scales the
    // utility exactly, hence identical ratio pointwise.
    EXPECT_EQ(game::sybil_utility(make_ring(scaled(weights, factor)), v,
                                  base.w1_star * factor),
              game::sybil_utility(make_ring(weights), v, base.w1_star) *
                  factor)
        << "trial " << trial;
  }
}

TEST(Metamorphic, RotationCommutesWithDecomposition) {
  util::Xoshiro256 rng(1207);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const auto weights = graph::random_integer_weights(n, rng, 9);
    const std::size_t shift =
        1 + static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));

    const bd::Decomposition base(make_ring(weights));
    const bd::Decomposition shifted(make_ring(rotated(weights, shift)));

    for (Vertex v = 0; v < n; ++v) {
      const auto rotated_vertex =
          static_cast<Vertex>((v + n - shift) % n);
      EXPECT_EQ(shifted.utility(rotated_vertex), base.utility(v))
          << "trial " << trial << " v" << v;
      EXPECT_EQ(shifted.alpha_of(rotated_vertex), base.alpha_of(v));
    }
  }
}

TEST(Metamorphic, ReflectionPreservesUtilities) {
  util::Xoshiro256 rng(1213);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const auto weights = graph::random_integer_weights(n, rng, 9);
    const bd::Decomposition base(make_ring(weights));
    const bd::Decomposition mirror(make_ring(reflected(weights)));
    for (Vertex v = 0; v < n; ++v) {
      const auto mirrored = static_cast<Vertex>(n - 1 - v);
      EXPECT_EQ(mirror.utility(mirrored), base.utility(v))
          << "trial " << trial << " v" << v;
    }
  }
}

TEST(Metamorphic, RotationPreservesRingIncentiveRatio) {
  game::SybilOptions options;
  options.samples_per_piece = 12;
  options.refinement_rounds = 12;
  const std::vector<Rational> weights = {Rational(4), Rational(10),
                                         Rational(1), Rational(2),
                                         Rational(5)};
  const auto base = game::optimize_sybil_split(make_ring(weights), 1, options);
  // Rotate so that the manipulator sits at index 0.
  const auto shifted =
      game::optimize_sybil_split(make_ring(rotated(weights, 1)), 0, options);
  EXPECT_EQ(base.ratio, shifted.ratio);
  EXPECT_EQ(base.honest_utility, shifted.honest_utility);
}

TEST(Metamorphic, SybilUtilityMirrorsUnderReflection) {
  // Reflecting the ring swaps the roles of the two copies: the utility of
  // split (t, w−t) on the original equals that of (w−t, t) on the mirror.
  const std::vector<Rational> weights = {Rational(4), Rational(10),
                                         Rational(1), Rational(2),
                                         Rational(5)};
  const Graph ring = make_ring(weights);
  // Reflection fixing vertex 0: index i -> (n − i) mod n.
  std::vector<Rational> mirror_weights(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i)
    mirror_weights[(weights.size() - i) % weights.size()] = weights[i];
  const Graph mirror = make_ring(mirror_weights);
  for (int i = 0; i <= 8; ++i) {
    const Rational t = ring.weight(0) * Rational(i, 8);
    EXPECT_EQ(game::sybil_utility(ring, 0, t),
              game::sybil_utility(mirror, 0, ring.weight(0) - t))
        << "t = " << t.to_string();
  }
}

}  // namespace
}  // namespace ringshare
