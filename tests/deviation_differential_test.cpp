// Differential verification of the deviation engine: every deviation kind
// (Sybil split, misreport, collusion) is cross-checked against a
// brute-force-decomposition grid search on exhaustive small instances. The
// optimizers must dominate every grid sample bit-exactly, reproduce the
// brute utility at their reported optimum bit-identically, and — per
// Theorem 8 — never exhibit a ratio above 2 (misreport exactly 1 per
// Theorem 10).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bd/brute.hpp"
#include "exp/families.hpp"
#include "game/deviation.hpp"
#include "util/perf_counters.hpp"

namespace ringshare::game {
namespace {

using bd::BottleneckPair;

/// Utility of v in g computed from the exponential-time reference
/// decomposition — fully independent of the parametric solver, the memo
/// cache and the ring kernel.
Rational brute_utility(const Graph& g, Vertex v) {
  const std::vector<BottleneckPair> pairs = bd::brute_force_decomposition(g);
  for (const BottleneckPair& pair : pairs) {
    const bool in_b = std::binary_search(pair.b.begin(), pair.b.end(), v);
    const bool in_c = std::binary_search(pair.c.begin(), pair.c.end(), v);
    if (!in_b && !in_c) continue;
    if (in_b && in_c) return g.weight(v);
    return in_b ? g.weight(v) * pair.alpha : g.weight(v) / pair.alpha;
  }
  ADD_FAILURE() << "brute_utility: vertex " << v << " not in decomposition";
  return Rational(0);
}

/// The deviator's total utility at parameter t, evaluated on the deviated
/// graph by the brute-force oracle.
Rational brute_deviated_utility(const Graph& ring, const DeviationTask& task,
                                const Rational& t) {
  switch (task.kind) {
    case DeviationKind::kSybil: {
      const SybilSplit split = split_ring(ring, task.vertex, t,
                                          ring.weight(task.vertex) - t);
      return brute_utility(split.path, split.v1) +
             brute_utility(split.path, split.v2);
    }
    case DeviationKind::kMisreport: {
      Graph g = ring;
      g.set_weight(task.vertex, t);
      return brute_utility(g, task.vertex);
    }
    case DeviationKind::kCollusion: {
      const ParametrizedGraph family =
          collusion_family(ring, task.vertex, task.partner);
      return brute_utility(family.at(t), 0);
    }
  }
  throw std::logic_error("brute_deviated_utility: bad kind");
}

/// Parameter range of one task ([0, w_v] or [0, w_v + w_partner]).
Rational parameter_cap(const Graph& ring, const DeviationTask& task) {
  if (task.kind == DeviationKind::kCollusion)
    return ring.weight(task.vertex) + ring.weight(task.partner);
  return ring.weight(task.vertex);
}

/// Honest (pre-deviation) utility of the task's actors via the oracle.
Rational brute_honest_utility(const Graph& ring, const DeviationTask& task) {
  if (task.kind == DeviationKind::kCollusion)
    return brute_utility(ring, task.vertex) +
           brute_utility(ring, task.partner);
  return brute_utility(ring, task.vertex);
}

/// The differential core: on `ring`, for every task of every kind, the
/// exact optimizer must (a) reproduce the brute utility at its optimum
/// bit-identically, (b) dominate a `grid_points + 1`-point uniform rational
/// grid, (c) agree with the oracle on the honest utility, and (d) respect
/// the paper's bounds.
void check_ring(const Graph& ring, int grid_points,
                const DeviationOptions& options) {
  const DeviationKind kinds[] = {DeviationKind::kSybil,
                                 DeviationKind::kMisreport,
                                 DeviationKind::kCollusion};
  for (const DeviationKind kind : kinds) {
    for (const DeviationTask& task : deviation_tasks(ring, kind)) {
      const DeviationOptimum optimum = optimize_deviation(ring, task, options);
      const char* label = to_string(kind);

      // (a) The reported utility is attained: recompute at t_star with the
      // exponential-time oracle, bit-identical.
      EXPECT_EQ(optimum.utility,
                brute_deviated_utility(ring, task, optimum.t_star))
          << label << " v=" << task.vertex;

      // (c) Honest utilities agree with the oracle bit-identically.
      EXPECT_EQ(optimum.honest_utility, brute_honest_utility(ring, task))
          << label << " v=" << task.vertex;

      // (b) Grid domination: no uniform rational sample beats the optimum.
      const Rational cap = parameter_cap(ring, task);
      for (int k = 0; k <= grid_points; ++k) {
        const Rational t = cap * Rational(k, grid_points);
        const Rational sampled = brute_deviated_utility(ring, task, t);
        EXPECT_LE(sampled, optimum.utility)
            << label << " v=" << task.vertex << " grid k=" << k;
      }

      // (d) Theorem 8: zero ratio-above-2 witnesses. Theorem 10: the
      // truthful report is optimal, so the misreport ratio is exactly 1.
      EXPECT_LE(optimum.ratio, Rational(2)) << label << " v=" << task.vertex;
      if (kind == DeviationKind::kMisreport)
        EXPECT_EQ(optimum.ratio, Rational(1)) << "v=" << task.vertex;
    }
  }
}

// Exhaustive n = 4 necklaces with weight numerators <= 3, with the
// exact-vs-scan cross-check armed: every structure piece is solved by BOTH
// engines and the exact optimum must dominate every scan probe.
TEST(DeviationDifferential, ExhaustiveN4CrossChecked) {
  DeviationOptions options;
  options.cross_check = true;
  for (const Graph& ring : exp::exhaustive_rings(4, 3))
    check_ring(ring, /*grid_points=*/8, options);
}

// Exhaustive n = 5 necklaces with weight numerators <= 2.
TEST(DeviationDifferential, ExhaustiveN5) {
  for (const Graph& ring : exp::exhaustive_rings(5, 2))
    check_ring(ring, /*grid_points=*/8, {});
}

// n = 6 necklaces with weight numerators <= 4, deterministically sampled
// (every 17th necklace) to keep the brute-force grid tractable.
TEST(DeviationDifferential, SampledN6MaxWeight4) {
  const std::vector<Graph> rings = exp::exhaustive_rings(6, 4);
  ASSERT_FALSE(rings.empty());
  for (std::size_t i = 0; i < rings.size(); i += 17)
    check_ring(rings[i], /*grid_points=*/6, {});
}

// The per-kind perf counters fire once per optimizer run.
TEST(DeviationDifferential, PerKindCountersFire) {
  const Graph ring = exp::uniform_ring(5);
  util::PerfCounters::reset();
  (void)MisreportOptimizer(ring, 0).optimize();
  (void)CollusionOptimizer(ring, 0, 1).optimize();
  const util::PerfSnapshot snapshot = util::PerfCounters::snapshot();
  EXPECT_EQ(snapshot.misreport_optimizations, 1u);
  EXPECT_EQ(snapshot.collusion_optimizations, 1u);
}

// Construction preconditions surface as typed exceptions.
TEST(DeviationDifferential, InvalidArgumentsThrow) {
  const Graph ring = exp::uniform_ring(4);
  EXPECT_THROW(MisreportOptimizer(ring, 99), std::invalid_argument);
  EXPECT_THROW(CollusionOptimizer(ring, 0, 2), std::invalid_argument);
  EXPECT_THROW(merge_adjacent(exp::uniform_ring(3), 0, 1),
               std::invalid_argument);
  EXPECT_FALSE(deviation_kind_from_string("no_such_kind").has_value());
  EXPECT_EQ(deviation_kind_from_string("collusion"),
            DeviationKind::kCollusion);
}

}  // namespace
}  // namespace ringshare::game
