// Fuzz-style sweep through the one-call verifier: random instances must
// satisfy EVERY machine-checked paper property at once.
#include "analysis/verify_all.hpp"

#include <gtest/gtest.h>

#include "exp/families.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::analysis {
namespace {

TEST(VerifyAll, CleanOnCanonicalInstances) {
  for (const graph::Graph& g :
       {graph::make_fig1_example(), exp::uniform_ring(5),
        exp::alternating_ring(6, graph::Rational(5)),
        exp::near_tight_ring(graph::Rational(20))}) {
    const FullReport report = full_verification(g);
    EXPECT_TRUE(report.ok()) << report.violations.front();
    EXPECT_GT(report.checks_run, 2);
  }
}

TEST(VerifyAll, FuzzRandomRings) {
  util::Xoshiro256 rng(31337);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const graph::Graph g =
        graph::make_ring(graph::random_integer_weights(n, rng, 9));
    const FullReport report = full_verification(g);
    EXPECT_TRUE(report.ok())
        << "trial " << trial << ": " << report.violations.front();
  }
}

TEST(VerifyAll, FuzzRandomRingsSecondSeed) {
  // A different stream: this suite historically surfaced real corner
  // cases (swap/coalescence events, zero-weight honest splits), so keep
  // two independent streams in CI.
  util::Xoshiro256 rng(271828);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 5 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const graph::Graph g =
        graph::make_ring(graph::random_integer_weights(n, rng, 12));
    const FullReport report = full_verification(g);
    EXPECT_TRUE(report.ok())
        << "trial " << trial << ": " << report.violations.front();
  }
}

TEST(VerifyAll, FuzzRandomGraphs) {
  util::Xoshiro256 rng(31339);
  FullVerificationOptions options;
  options.game_checks = true;  // auto-skipped on non-rings
  for (int trial = 0; trial < 4; ++trial) {
    const graph::Graph g = graph::make_random_connected(6, 0.45, rng, 8);
    const FullReport report = full_verification(g, options);
    EXPECT_TRUE(report.ok())
        << "trial " << trial << ": " << report.violations.front();
  }
}

TEST(VerifyAll, LayerTogglesReduceWork) {
  const graph::Graph g = exp::uniform_ring(5);
  FullVerificationOptions lean;
  lean.misreport_checks = false;
  lean.game_checks = false;
  const FullReport lean_report = full_verification(g, lean);
  const FullReport full_report = full_verification(g);
  EXPECT_LT(lean_report.checks_run, full_report.checks_run);
  EXPECT_TRUE(lean_report.ok());
}

}  // namespace
}  // namespace ringshare::analysis
