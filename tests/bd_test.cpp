// Tests for the bottleneck decomposition: the parametric solver against the
// brute-force oracle, the Fig. 1 example, and Proposition 3 invariants.
#include "bd/decomposition.hpp"

#include <gtest/gtest.h>

#include "bd/brute.hpp"
#include "bd/parametric.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::bd {
namespace {

using graph::Graph;
using graph::make_complete;
using graph::make_path;
using graph::make_ring;
using graph::make_star;

std::vector<Rational> ones(std::size_t n) {
  return std::vector<Rational>(n, Rational(1));
}

TEST(MaximalBottleneck, SingleEdge) {
  Graph g = make_path({Rational(1), Rational(3)});
  const BottleneckResult result = maximal_bottleneck(g);
  // α({0}) = 3, α({1}) = 1/3, α({0,1}) = 1: minimum is {1}.
  EXPECT_EQ(result.alpha, Rational(1, 3));
  EXPECT_EQ(result.bottleneck, (std::vector<Vertex>{1}));
}

TEST(MaximalBottleneck, UniformRingIsWholeGraph) {
  Graph g = make_ring(ones(5));
  const BottleneckResult result = maximal_bottleneck(g);
  EXPECT_EQ(result.alpha, Rational(1));
  EXPECT_EQ(result.bottleneck.size(), 5u);
}

TEST(MaximalBottleneck, StarCenterDominates) {
  // Star with heavy leaves: leaves form the bottleneck.
  Graph g = make_star({Rational(1), Rational(5), Rational(5), Rational(5)});
  const BottleneckResult result = maximal_bottleneck(g);
  EXPECT_EQ(result.alpha, Rational(1, 15));
  EXPECT_EQ(result.bottleneck, (std::vector<Vertex>{1, 2, 3}));
}

TEST(MaximalBottleneck, AllZeroThrows) {
  Graph g = make_path({Rational(0), Rational(0)});
  EXPECT_THROW((void)maximal_bottleneck(g), std::invalid_argument);
}

TEST(MaximalBottleneck, MatchesBruteForceOnRandomGraphs) {
  util::Xoshiro256 rng(101);
  for (int trial = 0; trial < 120; ++trial) {
    Graph g = graph::make_random_connected(
        3 + static_cast<std::size_t>(rng.uniform_int(0, 6)), 0.45, rng, 6);
    const BottleneckResult fast = maximal_bottleneck(g);
    const BottleneckResult slow = brute_force_bottleneck(g);
    EXPECT_EQ(fast.alpha, slow.alpha) << "trial " << trial;
    EXPECT_EQ(fast.bottleneck, slow.bottleneck) << "trial " << trial;
  }
}

TEST(MaximalBottleneck, MatchesBruteForceOnRandomRings) {
  util::Xoshiro256 rng(103);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    Graph g = make_ring(graph::random_integer_weights(n, rng, 5));
    const BottleneckResult fast = maximal_bottleneck(g);
    const BottleneckResult slow = brute_force_bottleneck(g);
    EXPECT_EQ(fast.alpha, slow.alpha) << "trial " << trial;
    EXPECT_EQ(fast.bottleneck, slow.bottleneck) << "trial " << trial;
  }
}

TEST(Decomposition, Fig1ExampleMatchesPaper) {
  const Graph g = graph::make_fig1_example();
  const Decomposition decomposition(g);
  ASSERT_EQ(decomposition.pair_count(), 2u);
  // (B1, C1) = ({v1, v2}, {v3}) with α = 1/3.
  EXPECT_EQ(decomposition.pairs()[0].b, (std::vector<Vertex>{0, 1}));
  EXPECT_EQ(decomposition.pairs()[0].c, (std::vector<Vertex>{2}));
  EXPECT_EQ(decomposition.pairs()[0].alpha, Rational(1, 3));
  // (B2, C2) = ({v4, v5, v6}, {v4, v5, v6}) with α = 1.
  EXPECT_EQ(decomposition.pairs()[1].b, (std::vector<Vertex>{3, 4, 5}));
  EXPECT_EQ(decomposition.pairs()[1].c, (std::vector<Vertex>{3, 4, 5}));
  EXPECT_EQ(decomposition.pairs()[1].alpha, Rational(1));
  EXPECT_TRUE(proposition3_violations(g, decomposition).empty());
}

TEST(Decomposition, ClassesOnFig1) {
  const Decomposition decomposition(graph::make_fig1_example());
  EXPECT_EQ(decomposition.vertex_class(0), VertexClass::kB);
  EXPECT_EQ(decomposition.vertex_class(1), VertexClass::kB);
  EXPECT_EQ(decomposition.vertex_class(2), VertexClass::kC);
  EXPECT_EQ(decomposition.vertex_class(3), VertexClass::kBoth);
  EXPECT_TRUE(decomposition.in_b_class(3));
  EXPECT_TRUE(decomposition.in_c_class(3));
  EXPECT_FALSE(decomposition.in_c_class(0));
}

TEST(Decomposition, Prop6UtilitiesOnFig1) {
  const Decomposition decomposition(graph::make_fig1_example());
  // v1: B class, w=1, α=1/3 -> U = 1/3; v2: w=2 -> 2/3; v3: C, w=1 -> 3.
  EXPECT_EQ(decomposition.utility(0), Rational(1, 3));
  EXPECT_EQ(decomposition.utility(1), Rational(2, 3));
  EXPECT_EQ(decomposition.utility(2), Rational(3));
  // α = 1 vertices keep their weight.
  EXPECT_EQ(decomposition.utility(3), Rational(1));
}

TEST(Decomposition, AlphaStrictlyIncreasing) {
  util::Xoshiro256 rng(107);
  for (int trial = 0; trial < 60; ++trial) {
    Graph g = graph::make_random_connected(
        4 + static_cast<std::size_t>(rng.uniform_int(0, 6)), 0.35, rng, 8);
    const Decomposition decomposition(g);
    const auto violations = proposition3_violations(g, decomposition);
    EXPECT_TRUE(violations.empty())
        << "trial " << trial << ": " << violations.front();
  }
}

TEST(Decomposition, MatchesBruteForceDecomposition) {
  util::Xoshiro256 rng(109);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    Graph g = make_ring(graph::random_integer_weights(n, rng, 4));
    const Decomposition fast(g);
    const auto slow = brute_force_decomposition(g);
    ASSERT_EQ(fast.pair_count(), slow.size()) << "trial " << trial;
    for (std::size_t i = 0; i < slow.size(); ++i) {
      EXPECT_EQ(fast.pairs()[i].b, slow[i].b) << "trial " << trial;
      EXPECT_EQ(fast.pairs()[i].c, slow[i].c) << "trial " << trial;
      EXPECT_EQ(fast.pairs()[i].alpha, slow[i].alpha) << "trial " << trial;
    }
  }
}

TEST(Decomposition, PartitionIsTotal) {
  util::Xoshiro256 rng(113);
  for (int trial = 0; trial < 40; ++trial) {
    Graph g = graph::make_random_connected(7, 0.4, rng, 5);
    const Decomposition decomposition(g);
    std::vector<int> seen(g.vertex_count(), 0);
    for (const auto& pair : decomposition.pairs()) {
      for (const Vertex v : pair.b) seen[v] |= 1;
      for (const Vertex v : pair.c) seen[v] |= 2;
    }
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      EXPECT_NE(seen[v], 0) << "vertex " << v;
      EXPECT_EQ(decomposition.pair_index(v),
                decomposition.pair_index(v));  // no throw
    }
  }
}

TEST(Decomposition, ZeroWeightVertexHandled) {
  // A path with a zero-weight leaf (the Sybil Case C-2 shape).
  Graph g = make_path({Rational(0), Rational(2), Rational(3), Rational(1)});
  const Decomposition decomposition(g);
  EXPECT_EQ(decomposition.utility(0), Rational(0));
  // Everyone still ends up in a pair.
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_NO_THROW((void)decomposition.pair_of(v));
  }
}

TEST(Decomposition, CompleteGraphUniform) {
  const Decomposition decomposition(make_complete(ones(4)));
  ASSERT_EQ(decomposition.pair_count(), 1u);
  EXPECT_EQ(decomposition.pairs()[0].alpha, Rational(1));
  EXPECT_EQ(decomposition.pairs()[0].b, decomposition.pairs()[0].c);
}

TEST(Decomposition, EvenRingAlternatingWeights) {
  // Ring (1, 5, 1, 5): light vertices form the bottleneck with α = 1/5...
  // α({0,2}) = w({1,3})/w({0,2}) = 10/2 = 5; α({1,3}) = 2/10 = 1/5.
  const Decomposition decomposition(
      make_ring({Rational(1), Rational(5), Rational(1), Rational(5)}));
  ASSERT_EQ(decomposition.pair_count(), 1u);
  EXPECT_EQ(decomposition.pairs()[0].alpha, Rational(1, 5));
  EXPECT_EQ(decomposition.pairs()[0].b, (std::vector<Vertex>{1, 3}));
  EXPECT_EQ(decomposition.pairs()[0].c, (std::vector<Vertex>{0, 2}));
}

TEST(Decomposition, SignatureEqualityDetectsStructure) {
  const Decomposition a(make_ring({Rational(1), Rational(5), Rational(1),
                                   Rational(5)}));
  const Decomposition b(make_ring({Rational(1), Rational(6), Rational(1),
                                   Rational(6)}));
  const Decomposition c(make_ring({Rational(5), Rational(1), Rational(5),
                                   Rational(1)}));
  EXPECT_EQ(a.signature(), b.signature());  // same sets, different α
  EXPECT_NE(a.signature(), c.signature());  // roles swapped
}

TEST(Decomposition, DinkelbachIterationCountIsSmall) {
  util::Xoshiro256 rng(127);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_ring(graph::random_integer_weights(10, rng, 20));
    const Decomposition decomposition(g);
    EXPECT_GT(decomposition.total_dinkelbach_iterations(), 0);
    EXPECT_LT(decomposition.total_dinkelbach_iterations(), 60);
  }
}

TEST(Decomposition, SingleVertexGraph) {
  // One isolated agent: nobody to exchange with; degenerate α = 0 pair,
  // utility 0, no crash.
  Graph g(1);
  g.set_weight(0, Rational(5));
  const Decomposition decomposition(g);
  ASSERT_EQ(decomposition.pair_count(), 1u);
  EXPECT_EQ(decomposition.utility(0), Rational(0));
}

TEST(Decomposition, DisconnectedComponentsDecomposeIndependently) {
  // Two disjoint edges with different ratios.
  Graph g({Rational(1), Rational(4), Rational(2), Rational(2)});
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const Decomposition decomposition(g);
  // Bottleneck of the whole graph: {1} with α = 1/4.
  EXPECT_EQ(decomposition.alpha_of(1), Rational(1, 4));
  EXPECT_EQ(decomposition.utility(1), Rational(1));   // 4 · 1/4
  EXPECT_EQ(decomposition.utility(0), Rational(4));   // 1 / (1/4)
  // The even pair exchanges at α = 1.
  EXPECT_EQ(decomposition.utility(2), Rational(2));
  EXPECT_EQ(decomposition.utility(3), Rational(2));
  EXPECT_TRUE(proposition3_violations(g, decomposition).empty());
}

TEST(Decomposition, ToStringListsAllPairs) {
  const Decomposition decomposition(graph::make_fig1_example());
  const std::string text = decomposition.to_string();
  EXPECT_NE(text.find("(B1, C1)"), std::string::npos);
  EXPECT_NE(text.find("(B2, C2)"), std::string::npos);
  EXPECT_NE(text.find("1/3"), std::string::npos);
}

TEST(AlphaRatio, ThrowsOnZeroWeightSet) {
  Graph g = make_path({Rational(0), Rational(1)});
  const std::vector<Vertex> zero_set = {0};
  EXPECT_THROW((void)alpha_ratio(g, zero_set), std::invalid_argument);
}

TEST(AlphaRatio, ComputesInclusiveExpansion) {
  Graph g = make_path({Rational(2), Rational(4), Rational(6)});
  const std::vector<Vertex> mid = {1};
  EXPECT_EQ(alpha_ratio(g, mid), Rational(2));  // (2+6)/4
  // Γ({0,1}) = {0,1,2} (S is not independent, so Γ(S) meets S).
  const std::vector<Vertex> pair = {0, 1};
  EXPECT_EQ(alpha_ratio(g, pair), Rational(2));  // 12/6
}

}  // namespace
}  // namespace ringshare::bd
