// Tests for the edge-hiding manipulation: the BD mechanism is truthful
// against severed connections ([6]/[7]) — the baseline the paper's Sybil
// analysis builds on.
#include "game/edge_manipulation.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::game {
namespace {

using graph::make_complete;
using graph::make_ring;
using graph::make_star;

TEST(HideEdges, RemovesOnlyRequestedEdges) {
  const Graph ring = make_ring({Rational(1), Rational(2), Rational(3),
                                Rational(4)});
  const Graph hidden = hide_edges(ring, 0, {1});
  EXPECT_FALSE(hidden.has_edge(0, 1));
  EXPECT_TRUE(hidden.has_edge(0, 3));
  EXPECT_TRUE(hidden.has_edge(1, 2));
  EXPECT_EQ(hidden.edge_count(), 3u);
  EXPECT_EQ(hidden.weight(0), Rational(1));
}

TEST(HideEdges, RejectsNonIncidentEdges) {
  const Graph ring = make_ring({Rational(1), Rational(2), Rational(3),
                                Rational(4)});
  EXPECT_THROW((void)hide_edges(ring, 0, {2}), std::invalid_argument);
}

TEST(HideEdges, FullIsolationEarnsZero) {
  const Graph ring = make_ring({Rational(1), Rational(2), Rational(3),
                                Rational(4)});
  EXPECT_EQ(utility_with_hidden_edges(ring, 0, {1, 3}), Rational(0));
}

TEST(EdgeHiding, TruthfulOnRandomRings) {
  util::Xoshiro256 rng(661);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const Graph ring = make_ring(graph::random_integer_weights(n, rng, 7));
    for (graph::Vertex v = 0; v < n; ++v) {
      const EdgeManipulationResult result = optimize_edge_hiding(ring, v);
      EXPECT_EQ(result.ratio, Rational(1))
          << "trial " << trial << " v" << v << " gained by hiding";
      EXPECT_TRUE(result.best_hidden.empty());
      EXPECT_EQ(result.subsets_tried, 3u);  // 2^2 − 1
    }
  }
}

TEST(EdgeHiding, TruthfulOnRandomGraphs) {
  util::Xoshiro256 rng(673);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = graph::make_random_connected(
        4 + static_cast<std::size_t>(rng.uniform_int(0, 3)), 0.5, rng, 6);
    for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.degree(v) == 0) continue;
      const EdgeManipulationResult result = optimize_edge_hiding(g, v);
      EXPECT_LE(result.best_utility, result.honest_utility)
          << "trial " << trial << " v" << v;
    }
  }
}

TEST(EdgeHiding, TruthfulOnStarsAndCompletes) {
  const Graph star = make_star({Rational(2), Rational(1), Rational(4),
                                Rational(3)});
  EXPECT_EQ(optimize_edge_hiding(star, 0).ratio, Rational(1));
  const Graph k4 = make_complete({Rational(1), Rational(3), Rational(2),
                                  Rational(5)});
  for (graph::Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(optimize_edge_hiding(k4, v).ratio, Rational(1)) << "v" << v;
  }
}

TEST(EdgeHiding, CountsAllSubsets) {
  const Graph k4 = make_complete(std::vector<Rational>(4, Rational(1)));
  const EdgeManipulationResult result = optimize_edge_hiding(k4, 0);
  EXPECT_EQ(result.subsets_tried, 7u);  // 2^3 − 1
}

}  // namespace
}  // namespace ringshare::game
