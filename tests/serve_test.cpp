#include "engine/batch_server.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/wire.hpp"
#include "exp/families.hpp"
#include "graph/builders.hpp"

namespace ringshare::engine {
namespace {

using game::DeviationKind;
using game::DeviationOptimum;
using game::DeviationSweep;
using game::DeviationTask;

const std::vector<DeviationKind> kAllKinds = {DeviationKind::kSybil,
                                              DeviationKind::kMisreport,
                                              DeviationKind::kCollusion};

/// Collects responses in emission order (the sink runs under the server's
/// sequencer lock, so no extra synchronization is needed while serving;
/// read the vector only after drain()).
struct Collector {
  std::vector<std::string> lines;
  BatchServer::Sink sink() {
    return [this](const std::string& line) { lines.push_back(line); };
  }
};

/// The ISSUE's round-trip contract: server responses are bit-identical to
/// the direct DeviationSweep solve, on exhaustive necklaces up to n = 6,
/// for every deviation kind — through routing, caching and dedup.
TEST(BatchServer, RoundTripBitIdenticalToDirectSweep) {
  std::vector<Graph> rings;
  for (std::size_t n = 3; n <= 6; ++n)
    for (Graph& g : exp::exhaustive_rings(n, /*max_weight=*/2))
      rings.push_back(std::move(g));

  struct Expected {
    std::uint64_t req;
    std::size_t instance;
    DeviationTask task;
  };
  std::vector<Expected> expected;

  Collector collector;
  {
    BatchServerConfig config;
    config.shards = 3;
    BatchServer server(config, collector.sink());
    std::uint64_t req = 0;
    for (std::size_t i = 0; i < rings.size(); ++i) {
      server.register_instance(i, rings[i]);
      for (const DeviationKind kind : kAllKinds)
        for (const DeviationTask& task : game::deviation_tasks(rings[i], kind)) {
          server.submit(req, format_task_key(i, task));
          expected.push_back(Expected{req, i, task});
          ++req;
        }
    }
    server.drain();

    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.requests, expected.size());
    EXPECT_EQ(stats.errors, 0u);
    // Necklace families are symmetry-heavy: canonical coalescing must have
    // answered a large share without a fresh solve.
    EXPECT_LT(stats.solves, stats.requests);
    EXPECT_EQ(stats.solves + stats.dedup_hits + stats.cache_hits,
              stats.requests);
    EXPECT_EQ(stats.latency.count, stats.requests);
  }

  ASSERT_EQ(collector.lines.size(), expected.size());
  DeviationSweep direct;
  direct.kinds = kAllKinds;
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const std::string& line = collector.lines[k];
    // Arrival order: response k answers request k.
    ASSERT_EQ(json_uint_field(line, "req"), expected[k].req) << line;
    const DeviationOptimum direct_opt =
        direct.run(rings[expected[k].instance], expected[k].task);
    EXPECT_EQ(json_string_field(line, "ratio"), direct_opt.ratio.to_string())
        << line;
    EXPECT_EQ(json_string_field(line, "t_star"), direct_opt.t_star.to_string())
        << line;
    EXPECT_EQ(json_string_field(line, "utility"),
              direct_opt.utility.to_string())
        << line;
    EXPECT_EQ(json_string_field(line, "honest_utility"),
              direct_opt.honest_utility.to_string())
        << line;
    ASSERT_TRUE(json_uint_field(line, "latency_us")) << line;
  }
}

/// Concurrent identical requests coalesce onto (at most) one fresh solve
/// and all receive the same exact answer.
TEST(BatchServer, ConcurrentIdenticalRequestsSolveOnce) {
  Collector collector;
  BatchServerConfig config;
  config.shards = 2;
  BatchServer server(config, collector.sink());
  server.register_instance(
      0, graph::make_ring({Rational(5), Rational(1), Rational(4), Rational(2),
                           Rational(3)}));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 8;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      for (int k = 0; k < kPerThread; ++k)
        server.submit(static_cast<std::uint64_t>(t * kPerThread + k), "i0.v0");
    });
  for (std::thread& t : submitters) t.join();
  server.drain();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.dedup_hits + stats.cache_hits,
            static_cast<std::uint64_t>(kThreads * kPerThread - 1));

  ASSERT_EQ(collector.lines.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  const auto ratio = json_string_field(collector.lines[0], "ratio");
  const auto t_star = json_string_field(collector.lines[0], "t_star");
  ASSERT_TRUE(ratio && t_star);
  for (const std::string& line : collector.lines) {
    EXPECT_EQ(json_string_field(line, "ratio"), ratio) << line;
    EXPECT_EQ(json_string_field(line, "t_star"), t_star) << line;
  }
}

/// Rotated / reflected / scaled instances route to the same shard and are
/// answered from its canonical cache after a single solve; the exact ratio
/// is identical across all variants and utilities scale with the instance.
TEST(BatchServer, SymmetricInstancesShareShardCache) {
  const std::vector<Rational> base = {Rational(4), Rational(1), Rational(3),
                                      Rational(2), Rational(2)};
  const std::size_t n = base.size();

  Collector collector;
  BatchServerConfig config;
  config.shards = 4;
  BatchServer server(config, collector.sink());

  // Instance v: rotation by v, so original vertex 0 sits at... register the
  // rotations; the deviator with weight base[0] is vertex (n - rot) % n.
  struct Variant {
    std::size_t instance;
    graph::Vertex deviator;
    Rational scale;
  };
  std::vector<Variant> variants;
  std::size_t id = 0;
  for (std::size_t rot = 0; rot < n; ++rot) {
    for (const int scale : {1, 6}) {
      std::vector<Rational> weights(n);
      for (std::size_t j = 0; j < n; ++j)
        weights[j] = base[(rot + j) % n] * Rational(scale);
      server.register_instance(id, graph::make_ring(weights));
      variants.push_back(
          Variant{id, static_cast<graph::Vertex>((n - rot) % n),
                  Rational(scale)});
      ++id;
    }
  }

  // Serialize the submissions (drain between) so every repeat after the
  // first is a pure CACHE hit, not a dedup coalesce. Misreport quotients
  // the full dihedral group plus scaling, so ALL variants share one
  // canonical task and exactly one solve runs.
  std::uint64_t req = 0;
  for (const Variant& v : variants) {
    DeviationTask task;
    task.kind = DeviationKind::kMisreport;
    task.vertex = v.deviator;
    server.submit(req++, format_task_key(v.instance, task));
    server.drain();
  }

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.cache_hits, variants.size() - 1);
  EXPECT_EQ(stats.dedup_hits, 0u);

  ASSERT_EQ(collector.lines.size(), variants.size());
  const auto ratio0 = json_string_field(collector.lines[0], "ratio");
  const auto shard0 = json_uint_field(collector.lines[0], "shard");
  const Rational utility0 =
      Rational::from_string(*json_string_field(collector.lines[0], "utility"));
  ASSERT_TRUE(ratio0 && shard0);
  for (std::size_t k = 0; k < variants.size(); ++k) {
    const std::string& line = collector.lines[k];
    EXPECT_EQ(json_string_field(line, "ratio"), ratio0) << line;
    EXPECT_EQ(json_uint_field(line, "shard"), shard0) << line;
    const Rational utility = Rational::from_string(
        *json_string_field(line, "utility"));
    // Variant 0 has scale 1; utilities are 1-homogeneous in the weights.
    EXPECT_EQ(utility, utility0 * variants[k].scale) << line;
    EXPECT_EQ(json_string_field(line, "served"),
              k == 0 ? std::string("solve") : std::string("cache"))
        << line;
  }
}

/// Failures tied to a request id come back as in-order error responses.
TEST(BatchServer, ErrorResponsesKeepArrivalOrder) {
  Collector collector;
  BatchServerConfig config;
  config.shards = 2;
  BatchServer server(config, collector.sink());
  server.register_instance(
      0, graph::make_ring({Rational(2), Rational(1), Rational(3)}));

  server.submit(0, "i9.v0");     // unknown instance
  server.submit(1, "garbage");   // malformed key
  server.submit(2, "i0.v7");     // vertex out of range
  server.submit(3, "i0.v0");     // valid
  server.drain();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.errors, 3u);
  ASSERT_EQ(collector.lines.size(), 4u);
  for (std::uint64_t k = 0; k < 4; ++k)
    EXPECT_EQ(json_uint_field(collector.lines[k], "req"), k)
        << collector.lines[k];
  for (int k = 0; k < 3; ++k)
    EXPECT_TRUE(json_string_field(collector.lines[k], "error"))
        << collector.lines[k];
  EXPECT_TRUE(json_string_field(collector.lines[3], "ratio"))
      << collector.lines[3];
}

/// dedup=false still serves correct results (every request solves fresh
/// unless cached).
TEST(BatchServer, DedupDisabledStillCorrect) {
  Collector collector;
  BatchServerConfig config;
  config.shards = 2;
  config.dedup = false;
  config.cache_capacity = 0;
  BatchServer server(config, collector.sink());
  server.register_instance(
      0, graph::make_ring({Rational(3), Rational(1), Rational(2),
                           Rational(1)}));
  for (std::uint64_t req = 0; req < 6; ++req) server.submit(req, "i0.v0");
  server.drain();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.solves, 6u);
  EXPECT_EQ(stats.dedup_hits, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  const auto ratio = json_string_field(collector.lines[0], "ratio");
  for (const std::string& line : collector.lines)
    EXPECT_EQ(json_string_field(line, "ratio"), ratio) << line;
}

}  // namespace
}  // namespace ringshare::engine
