// Tests for the experiment harness: instance families and the sweep driver.
#include "exp/families.hpp"

#include <gtest/gtest.h>

#include "exp/sweep.hpp"

namespace ringshare::exp {
namespace {

TEST(Families, UniformRing) {
  const Graph g = uniform_ring(6);
  EXPECT_EQ(g.vertex_count(), 6u);
  for (graph::Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.weight(v), Rational(1));
}

TEST(Families, AlternatingRing) {
  const Graph g = alternating_ring(6, Rational(7));
  EXPECT_EQ(g.weight(0), Rational(1));
  EXPECT_EQ(g.weight(1), Rational(7));
  EXPECT_EQ(g.weight(5), Rational(7));
  EXPECT_THROW((void)alternating_ring(5, Rational(2)), std::invalid_argument);
}

TEST(Families, SingleHeavyRing) {
  const Graph g = single_heavy_ring(5, Rational(100));
  EXPECT_EQ(g.weight(0), Rational(100));
  EXPECT_EQ(g.weight(1), Rational(1));
}

TEST(Families, NearTightRingStructure) {
  const Graph g = near_tight_ring(Rational(10));
  ASSERT_EQ(g.vertex_count(), 7u);
  EXPECT_EQ(g.weight(0), Rational(1));
  EXPECT_EQ(g.weight(2), Rational(10));
  EXPECT_EQ(g.weight(6), Rational(3, 20));  // 3/(2H)
  EXPECT_THROW((void)near_tight_ring(Rational(1)), std::invalid_argument);
}

TEST(Families, NearTightRingSGeneralizes) {
  const Graph g = near_tight_ring_s(Rational(7), Rational(100));
  EXPECT_EQ(g.weight(0), Rational(7));
  EXPECT_EQ(g.weight(6), Rational(21, 200));  // 3s/(2H)
  // s = 1 coincides with the base family.
  EXPECT_EQ(near_tight_ring_s(Rational(1), Rational(50)).weights(),
            near_tight_ring(Rational(50)).weights());
  EXPECT_THROW((void)near_tight_ring_s(Rational(0), Rational(10)),
               std::invalid_argument);
}

TEST(Families, GeometricRing) {
  const Graph g = geometric_ring(4, Rational(3, 2));
  EXPECT_EQ(g.weight(0), Rational(1));
  EXPECT_EQ(g.weight(1), Rational(3, 2));
  EXPECT_EQ(g.weight(3), Rational(27, 8));
  EXPECT_THROW((void)geometric_ring(2, Rational(2)), std::invalid_argument);
  EXPECT_THROW((void)geometric_ring(4, Rational(0)), std::invalid_argument);
}

TEST(Families, RandomRingsDeterministicInSeed) {
  const auto a = random_rings(5, 6, 42);
  const auto b = random_rings(5, 6, 42);
  const auto c = random_rings(5, 6, 43);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].weights(), b[i].weights());
  }
  bool any_different = false;
  for (std::size_t i = 0; i < 5; ++i) {
    if (a[i].weights() != c[i].weights()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Families, ExhaustiveRingsAreCanonicalAndComplete) {
  // n = 3, weights in {1, 2}: necklaces under rotation+reflection of a
  // 2-ary 3-string: 4 of them (111, 112, 122, 222).
  const auto rings = exhaustive_rings(3, 2);
  EXPECT_EQ(rings.size(), 4u);
  // n = 4, weights in {1, 2}: 6 binary bracelets of length 4.
  EXPECT_EQ(exhaustive_rings(4, 2).size(), 6u);
  for (const Graph& g : rings) {
    EXPECT_EQ(g.vertex_count(), 3u);
    EXPECT_EQ(g.edge_count(), 3u);
  }
}

TEST(Sweep, FindsGainOnOddRingCollection) {
  // A 5-ring with strongly uneven weights gains; the uniform one does not.
  std::vector<Graph> rings;
  rings.push_back(uniform_ring(5));
  rings.push_back(graph::make_ring({Rational(4), Rational(10), Rational(1),
                                    Rational(2), Rational(5)}));
  game::SybilOptions options;
  options.samples_per_piece = 24;
  options.refinement_rounds = 20;
  const SweepResult result = sweep_rings(rings, options);
  EXPECT_EQ(result.per_instance_max.size(), 2u);
  EXPECT_EQ(result.per_instance_max[0], Rational(1));
  EXPECT_GT(result.per_instance_max[1], Rational(1));
  EXPECT_LE(result.max_ratio, Rational(2));
  EXPECT_EQ(result.argmax_instance, 1u);
}

TEST(Sweep, RejectsEmptyCollection) {
  EXPECT_THROW((void)sweep_rings({}), std::invalid_argument);
}

}  // namespace
}  // namespace ringshare::exp
