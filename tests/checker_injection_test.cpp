// Failure-injection tests: the invariant checkers are load-bearing test
// oracles, so each must actually FLAG corrupted inputs — a checker that
// passes everything would silently hollow out half the suite.
#include <gtest/gtest.h>

#include "bd/allocation.hpp"
#include "bd/brute.hpp"
#include "bd/decomposition.hpp"
#include "graph/builders.hpp"

namespace ringshare::bd {
namespace {

using graph::make_ring;

/// A corruptible stand-in: rebuild a Decomposition-like pair list and run
/// proposition3_violations against hand-broken variants. The checker takes
/// the real Decomposition, so corruption is staged through a copy of its
/// pairs re-examined by a fresh checker entry point — here we corrupt the
/// graph side instead (same weights, edges that invalidate the claims).
TEST(Prop3Checker, FlagsNonIndependentBottleneck) {
  // Path (10, 1, 10): decomposition B = {0, 2} (α = 1/20), C = {1}.
  // Present the same decomposition against a graph where B is NOT
  // independent (extra edge 0-2): Prop 3(2) must fire.
  const graph::Graph honest =
      graph::make_path({Rational(10), Rational(1), Rational(10)});
  const Decomposition decomposition(honest);
  ASSERT_TRUE(proposition3_violations(honest, decomposition).empty());

  graph::Graph corrupted = honest;
  corrupted.add_edge(0, 2);
  const auto violations = proposition3_violations(corrupted, decomposition);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("not independent"), std::string::npos);
}

TEST(Prop3Checker, FlagsEdgeBetweenBottlenecks) {
  // Two far-apart pairs on a 6-ring with a corrupting chord between their
  // B sides.
  const graph::Graph ring = make_ring({Rational(1), Rational(8), Rational(1),
                                       Rational(1), Rational(8), Rational(1)});
  const Decomposition decomposition(ring);
  ASSERT_TRUE(proposition3_violations(ring, decomposition).empty());
  // Find two B vertices in different pairs (if the decomposition has one
  // pair only, skip — the instance above splits into >= 2 pairs).
  if (decomposition.pair_count() >= 2) {
    graph::Graph corrupted = ring;
    const graph::Vertex b1 = decomposition.pairs()[0].b.front();
    const graph::Vertex b2 = decomposition.pairs()[1].b.front();
    if (!corrupted.has_edge(b1, b2)) {
      corrupted.add_edge(b1, b2);
      EXPECT_FALSE(proposition3_violations(corrupted, decomposition).empty());
    }
  }
}

TEST(AllocationChecker, FlagsBudgetImbalance) {
  const graph::Graph ring = make_ring({Rational(2), Rational(3), Rational(1),
                                       Rational(4)});
  const Decomposition decomposition(ring);
  Allocation allocation = bd_allocation(decomposition);
  ASSERT_TRUE(allocation_violations(decomposition, allocation).empty());

  // Steal half of some transfer: the sender no longer ships w_v.
  for (const auto& [u, v, amount] : allocation.transfers()) {
    allocation.set_sent(u, v, amount * Rational(1, 2));
    break;
  }
  const auto violations = allocation_violations(decomposition, allocation);
  ASSERT_FALSE(violations.empty());
  bool found_budget = false;
  for (const auto& violation : violations) {
    if (violation.find("ship exactly") != std::string::npos)
      found_budget = true;
  }
  EXPECT_TRUE(found_budget);
}

TEST(AllocationChecker, FlagsNonEdgeTransfer) {
  const graph::Graph ring = make_ring({Rational(2), Rational(3), Rational(1),
                                       Rational(4)});
  const Decomposition decomposition(ring);
  Allocation allocation = bd_allocation(decomposition);
  allocation.set_sent(0, 2, Rational(1, 7));  // 0-2 is not a ring edge
  const auto violations = allocation_violations(decomposition, allocation);
  bool found = false;
  for (const auto& violation : violations) {
    if (violation.find("non-edge") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AllocationChecker, FlagsUtilityMismatch) {
  const graph::Graph ring = make_ring({Rational(2), Rational(3), Rational(1),
                                       Rational(4)});
  const Decomposition decomposition(ring);
  Allocation allocation = bd_allocation(decomposition);
  // Reroute: move a transfer to the other neighbor (keeps the sender's
  // budget but changes the receivers' utilities).
  const auto transfers = allocation.transfers();
  const auto& [u, v, amount] = transfers.front();
  const auto neighbors = ring.neighbors(u);
  const graph::Vertex other = neighbors[0] == v ? neighbors[1] : neighbors[0];
  allocation.set_sent(u, v, Rational(0));
  allocation.set_sent(u, other, allocation.sent(u, other) + amount);
  const auto violations = allocation_violations(decomposition, allocation);
  bool found = false;
  for (const auto& violation : violations) {
    if (violation.find("Prop. 6") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FixedPointChecker, FlagsSkewedExchange) {
  // Uniform triangle, symmetric allocation, then skew one direction.
  const graph::Graph ring = make_ring(std::vector<Rational>(3, Rational(1)));
  const Decomposition decomposition(ring);
  Allocation allocation = bd_allocation(decomposition);
  ASSERT_TRUE(fixed_point_violations(decomposition, allocation).empty());
  allocation.set_sent(0, 1, Rational(3, 4));
  allocation.set_sent(0, 2, Rational(1, 4));
  EXPECT_FALSE(fixed_point_violations(decomposition, allocation).empty());
}

TEST(BruteForceOracle, AgreesWithItselfUnderRelabeling) {
  // Consistency of the oracle itself: relabeling the ring rotates the
  // bottleneck with it.
  const graph::Graph ring = make_ring({Rational(1), Rational(8), Rational(1),
                                       Rational(8)});
  const auto base = brute_force_bottleneck(ring);
  const graph::Graph rotated = make_ring({Rational(8), Rational(1),
                                          Rational(8), Rational(1)});
  const auto shifted = brute_force_bottleneck(rotated);
  EXPECT_EQ(base.alpha, shifted.alpha);
  EXPECT_EQ(base.bottleneck.size(), shifted.bottleneck.size());
}

}  // namespace
}  // namespace ringshare::bd
