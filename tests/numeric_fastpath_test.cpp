// Differential tests for the small-value numeric fast path: every operation
// run twice, once with the inline-int64 fast path enabled and once forced
// through the limb-vector slow path, must agree exactly. The slow path is
// the oracle — it predates the fast path and is exercised by the rest of
// the suite on big values.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "numeric/bigint.hpp"
#include "numeric/rational.hpp"
#include "util/rng.hpp"

namespace ringshare {
namespace {

using num::BigInt;
using num::Rational;

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/// Restores the fast-path switch on scope exit so a failing assertion
/// cannot leak a disabled fast path into other tests.
class FastPathGuard {
 public:
  FastPathGuard() : saved_(BigInt::fast_path_enabled()) {}
  ~FastPathGuard() { BigInt::set_fast_path_enabled(saved_); }

 private:
  bool saved_;
};

/// Values at and around every representation boundary.
std::vector<std::int64_t> boundary_values() {
  return {0,        1,         -1,       2,        -2,
          kMax,     kMax - 1,  kMin,     kMin + 1, kMin + 2,
          1 << 30,  -(1 << 30), INT64_C(1) << 31, -(INT64_C(1) << 31),
          INT64_C(1) << 32, -(INT64_C(1) << 32), (INT64_C(1) << 62),
          -(INT64_C(1) << 62), INT64_C(3037000499) /* ~sqrt(int64 max) */};
}

/// A mixed-magnitude random operand: small counts, limb-boundary straddlers
/// and full-range values all show up.
std::int64_t random_operand(util::Xoshiro256& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return rng.uniform_int(-20, 20);
    case 1:
      return rng.uniform_int(-(INT64_C(1) << 33), INT64_C(1) << 33);
    case 2: {
      // Within 16 of a power of two (promotion hot spots).
      const int shift = static_cast<int>(rng.uniform_int(30, 62));
      const std::int64_t base = INT64_C(1) << shift;
      const std::int64_t jitter = rng.uniform_int(-16, 16);
      return rng.uniform_int(0, 1) ? base + jitter : -(base + jitter);
    }
    default:
      return rng.uniform_int(kMin, kMax);
  }
}

struct BinaryCase {
  const char* name;
  BigInt (*apply)(const BigInt&, const BigInt&);
};

const BinaryCase kBinaryCases[] = {
    {"add", [](const BigInt& a, const BigInt& b) { return a + b; }},
    {"sub", [](const BigInt& a, const BigInt& b) { return a - b; }},
    {"mul", [](const BigInt& a, const BigInt& b) { return a * b; }},
    {"div",
     [](const BigInt& a, const BigInt& b) {
       return b.is_zero() ? BigInt(0) : a / b;
     }},
    {"mod",
     [](const BigInt& a, const BigInt& b) {
       return b.is_zero() ? BigInt(0) : a % b;
     }},
    {"gcd", [](const BigInt& a, const BigInt& b) { return BigInt::gcd(a, b); }},
};

void expect_same_both_ways(std::int64_t a, std::int64_t b) {
  const BigInt big_a(a);
  const BigInt big_b(b);
  for (const BinaryCase& op : kBinaryCases) {
    BigInt::set_fast_path_enabled(true);
    const BigInt fast = op.apply(big_a, big_b);
    BigInt::set_fast_path_enabled(false);
    const BigInt slow = op.apply(big_a, big_b);
    EXPECT_EQ(fast, slow) << op.name << "(" << a << ", " << b << ")";
    EXPECT_EQ(fast.to_string(), slow.to_string())
        << op.name << "(" << a << ", " << b << ")";
    EXPECT_EQ(fast.hash(), slow.hash()) << op.name << "(" << a << ", " << b
                                        << ")";
    BigInt::set_fast_path_enabled(true);
  }
  // Comparison must agree with the built-in ordering on inline inputs.
  EXPECT_EQ(big_a < big_b, a < b);
  EXPECT_EQ(big_a == big_b, a == b);
}

TEST(NumericFastPath, BoundaryPairsMatchSlowPath) {
  FastPathGuard guard;
  const std::vector<std::int64_t> values = boundary_values();
  for (const std::int64_t a : values) {
    for (const std::int64_t b : values) expect_same_both_ways(a, b);
  }
}

TEST(NumericFastPath, RandomizedPairsMatchSlowPath) {
  FastPathGuard guard;
  util::Xoshiro256 rng(20260806);
  for (int trial = 0; trial < 4000; ++trial) {
    expect_same_both_ways(random_operand(rng), random_operand(rng));
  }
}

TEST(NumericFastPath, PromotionAndDemotionStayCanonical) {
  FastPathGuard guard;
  const BigInt max(kMax);
  const BigInt min(kMin);

  // Cross the boundary upward and come back: must demote to inline form.
  BigInt up = max + BigInt(1);
  EXPECT_FALSE(up.fits_int64());
  EXPECT_EQ(up.to_string(), "9223372036854775808");
  BigInt back = up - BigInt(1);
  EXPECT_TRUE(back.fits_int64());
  EXPECT_EQ(back, max);

  // INT64_MIN is inline; its magnitude is not.
  EXPECT_TRUE(min.fits_int64());
  BigInt neg_min = min.negated();
  EXPECT_FALSE(neg_min.fits_int64());
  EXPECT_EQ(neg_min.to_string(), "9223372036854775808");
  EXPECT_EQ(neg_min.negated(), min);
  EXPECT_TRUE(neg_min.negated().fits_int64());
  EXPECT_EQ(min.abs(), neg_min);

  // INT64_MIN / -1 overflows int64 and must promote.
  BigInt quotient = min / BigInt(-1);
  EXPECT_FALSE(quotient.fits_int64());
  EXPECT_EQ(quotient, neg_min);

  // Same value reached via inline and via limb arithmetic: equal and
  // hash-equal (the representation is canonical).
  BigInt::set_fast_path_enabled(false);
  BigInt slow_route = (max + BigInt(1)) - BigInt(1);
  BigInt::set_fast_path_enabled(true);
  EXPECT_TRUE(slow_route.fits_int64());
  EXPECT_EQ(slow_route, max);
  EXPECT_EQ(slow_route.hash(), max.hash());
}

TEST(NumericFastPath, IsqrtAndPerfectSquareMatchSlowPath) {
  FastPathGuard guard;
  util::Xoshiro256 rng(77);
  std::vector<std::int64_t> values = {0, 1, 2, 3, 4, 8, 9, 15, 16, 17,
                                      kMax, kMax - 1,
                                      INT64_C(3037000499) * INT64_C(3037000499)};
  for (int trial = 0; trial < 300; ++trial)
    values.push_back(std::abs(random_operand(rng)) | 1);
  for (const std::int64_t v : values) {
    const BigInt big(v < 0 ? -v : v);
    BigInt::set_fast_path_enabled(true);
    const BigInt fast_root = BigInt::isqrt(big);
    const bool fast_square = BigInt::is_perfect_square(big);
    BigInt::set_fast_path_enabled(false);
    const BigInt slow_root = BigInt::isqrt(big);
    const bool slow_square = BigInt::is_perfect_square(big);
    BigInt::set_fast_path_enabled(true);
    EXPECT_EQ(fast_root, slow_root) << "isqrt(" << big.to_string() << ")";
    EXPECT_EQ(fast_square, slow_square)
        << "is_perfect_square(" << big.to_string() << ")";
    // Root invariant: root² <= v < (root+1)².
    EXPECT_LE(fast_root * fast_root, big);
    EXPECT_LT(big, (fast_root + BigInt(1)) * (fast_root + BigInt(1)));
  }
}

TEST(NumericFastPath, RationalArithmeticMatchesSlowPath) {
  FastPathGuard guard;
  util::Xoshiro256 rng(4242);
  for (int trial = 0; trial < 1500; ++trial) {
    const std::int64_t an = rng.uniform_int(-1000000, 1000000);
    const std::int64_t ad = rng.uniform_int(1, 1000000);
    const std::int64_t bn = rng.uniform_int(-1000000, 1000000);
    const std::int64_t bd = rng.uniform_int(1, 1000000);

    BigInt::set_fast_path_enabled(true);
    const Rational fa(an, ad);
    const Rational fb(bn, bd);
    const Rational fast_sum = fa + fb;
    const Rational fast_diff = fa - fb;
    const Rational fast_prod = fa * fb;
    const Rational fast_quot = fb.is_zero() ? Rational(0) : fa / fb;
    const auto fast_order = fa <=> fb;

    BigInt::set_fast_path_enabled(false);
    const Rational sa(an, ad);
    const Rational sb(bn, bd);
    const Rational slow_sum = sa + sb;
    const Rational slow_diff = sa - sb;
    const Rational slow_prod = sa * sb;
    const Rational slow_quot = sb.is_zero() ? Rational(0) : sa / sb;
    const auto slow_order = sa <=> sb;
    BigInt::set_fast_path_enabled(true);

    EXPECT_EQ(fast_sum, slow_sum) << an << "/" << ad << " + " << bn << "/"
                                  << bd;
    EXPECT_EQ(fast_diff, slow_diff);
    EXPECT_EQ(fast_prod, slow_prod);
    EXPECT_EQ(fast_quot, slow_quot);
    EXPECT_EQ(fast_order, slow_order);

    // Results must be in lowest terms with positive denominators.
    for (const Rational& r : {fast_sum, fast_diff, fast_prod, fast_quot}) {
      EXPECT_FALSE(r.denominator().is_negative());
      EXPECT_EQ(BigInt::gcd(r.numerator(), r.denominator()), BigInt(1));
    }
  }
}

TEST(NumericFastPath, MixedMagnitudeChainsMatchSlowPath) {
  FastPathGuard guard;
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    // A chain that repeatedly crosses the inline/limb boundary.
    std::vector<std::int64_t> script;
    script.reserve(12);
    for (int i = 0; i < 12; ++i) script.push_back(random_operand(rng));

    auto run_chain = [&script]() {
      BigInt acc(1);
      for (const std::int64_t v : script) {
        acc *= BigInt(v);
        acc += BigInt(v);
        if (!(v == 0)) acc /= BigInt(v < 0 ? -v : v);
      }
      return acc;
    };

    BigInt::set_fast_path_enabled(true);
    const BigInt fast = run_chain();
    BigInt::set_fast_path_enabled(false);
    const BigInt slow = run_chain();
    BigInt::set_fast_path_enabled(true);
    EXPECT_EQ(fast, slow);
    EXPECT_EQ(fast.to_string(), slow.to_string());
  }
}

}  // namespace
}  // namespace ringshare
