// delta_test.cpp — the delta-update engine vs from-scratch decompositions.
//
// The delta solver's contract is bit-identity: after every single-weight
// edit, DeltaSolver::decomposition() must equal the decomposition a cold
// solver would compute on the edited graph — same (B, C) sets, same exact
// α values, same utilities — no matter which reuse mechanisms (stage-state
// patching, kernel F/G row patch, tail splice) engaged. The differential
// suites here drive random edit sequences over exhaustive small necklaces
// against a fully-deaccelerated oracle (no memo, no kernel: the Dinic
// path), so a delta bug cannot hide behind a shared accelerator.
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "bd/decomposition.hpp"
#include "bd/delta.hpp"
#include "bd/memo.hpp"
#include "bd/ring_kernel.hpp"
#include "exp/families.hpp"
#include "graph/builders.hpp"
#include "graph/graph.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace ringshare {
namespace {

using bd::BottleneckPair;
using bd::Decomposition;
using bd::DeltaOutcome;
using bd::DeltaSolver;
using bd::HotPathConfig;
using bd::hot_path_config;
using graph::Graph;
using graph::Rational;
using graph::Vertex;

class ConfigGuard {
 public:
  ConfigGuard() : saved_(hot_path_config()) {}
  ~ConfigGuard() { hot_path_config() = saved_; }

 private:
  HotPathConfig saved_;
};

/// Every accelerator off: the oracle shares no code path with the delta
/// engine beyond the Dinic solver itself.
HotPathConfig oracle_config() {
  HotPathConfig config;
  config.memo_cache = false;
  config.warm_start = false;
  config.flow_arena = false;
  config.canonical_cache = false;
  config.incremental_flow = false;
  config.decomposition_cache = false;
  config.ring_kernel = false;
  config.signature_oracle = false;
  config.delta_updates = false;
  return config;
}

void clear_caches() {
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();
}

/// Bit-identity of the live delta decomposition against a cold solve of the
/// same graph under the deaccelerated oracle configuration.
void expect_matches_cold(const DeltaSolver& solver, const char* context) {
  const HotPathConfig live = hot_path_config();
  hot_path_config() = oracle_config();
  const Decomposition cold(solver.graph());
  hot_path_config() = live;

  const std::vector<BottleneckPair>& got = solver.decomposition().pairs();
  const std::vector<BottleneckPair>& want = cold.pairs();
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].b, want[i].b) << context << " pair " << i;
    EXPECT_EQ(got[i].c, want[i].c) << context << " pair " << i;
    EXPECT_EQ(got[i].alpha, want[i].alpha) << context << " pair " << i;
  }
  for (Vertex v = 0; v < solver.graph().vertex_count(); ++v) {
    EXPECT_EQ(solver.decomposition().utility(v), cold.utility(v))
        << context << " utility of v" << v;
  }
}

/// Random edit: mostly small integers, sometimes small rationals (den 2/3,
/// exercising the per-component re-staging), occasionally zero.
Rational random_weight(util::Xoshiro256& rng) {
  const std::int64_t roll = rng.uniform_int(0, 9);
  if (roll == 0) return Rational(0);
  if (roll <= 2)
    return Rational(rng.uniform_int(1, 8)) / Rational(rng.uniform_int(2, 3));
  return Rational(rng.uniform_int(1, 8));
}

TEST(DeltaSolver, ExhaustiveNecklacesRandomEditSequences) {
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  clear_caches();
  util::Xoshiro256 rng(0xDE17A0001ULL);
  for (std::size_t n = 3; n <= 6; ++n) {
    for (const Graph& ring : exp::exhaustive_rings(n, n <= 5 ? 3 : 2)) {
      DeltaSolver solver(ring);
      for (int edit = 0; edit < 8; ++edit) {
        const Vertex v =
            static_cast<Vertex>(rng.uniform_int(0, static_cast<int>(n) - 1));
        solver.update_weight(v, random_weight(rng));
        expect_matches_cold(solver, "necklace edit");
      }
    }
  }
}

TEST(DeltaSolver, EditSequencesOnPathUnions) {
  // Ring-union instances (a path is a degenerate ring union): the stage
  // graphs after the first peel are unions of paths, so this exercises the
  // multi-component kernel state.
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  clear_caches();
  util::Xoshiro256 rng(0xDE17A0002ULL);
  for (std::size_t n = 4; n <= 7; ++n) {
    std::vector<Rational> weights;
    for (std::size_t i = 0; i < n; ++i)
      weights.emplace_back(rng.uniform_int(1, 5));
    DeltaSolver solver(graph::make_path(std::move(weights)));
    for (int edit = 0; edit < 12; ++edit) {
      const Vertex v =
          static_cast<Vertex>(rng.uniform_int(0, static_cast<int>(n) - 1));
      solver.update_weight(v, random_weight(rng));
      expect_matches_cold(solver, "path edit");
    }
  }
}

TEST(DeltaSolver, CrossCheckOracleStaysSilentOnEditStream) {
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  hot_path_config().cross_check_delta = true;
  clear_caches();
  util::Xoshiro256 rng(0xDE17A0003ULL);
  for (const Graph& ring : exp::random_rings(6, 12, /*seed=*/77)) {
    DeltaSolver solver(ring);
    for (int edit = 0; edit < 10; ++edit) {
      const Vertex v = static_cast<Vertex>(
          rng.uniform_int(0, static_cast<int>(ring.vertex_count()) - 1));
      // Throws std::logic_error on any delta-vs-full disagreement.
      solver.update_weight(v, random_weight(rng));
    }
  }
}

TEST(DeltaSolver, DeltaPathEngagesAndIsCounted) {
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  clear_caches();
  const util::PerfSnapshot before = util::PerfCounters::snapshot();
  util::Xoshiro256 rng(0xDE17A0004ULL);
  for (const Graph& ring : exp::random_rings(4, 16, /*seed=*/101)) {
    DeltaSolver solver(ring);
    for (int edit = 0; edit < 16; ++edit) {
      const Vertex v = static_cast<Vertex>(
          rng.uniform_int(0, static_cast<int>(ring.vertex_count()) - 1));
      solver.update_weight(v, Rational(rng.uniform_int(1, 9)));
    }
  }
  const util::PerfSnapshot delta =
      util::PerfCounters::snapshot().minus(before);
  // On a 16-vertex random-integer drift stream the reuse machinery must
  // actually fire: some updates splice or patch (hits), and patched stages
  // accumulate.
  EXPECT_GT(delta.delta_hits, 0u);
  EXPECT_GT(delta.delta_patched_stages, 0u);
  EXPECT_EQ(delta.delta_hits + delta.delta_fallbacks, 4u * 16u);
}

TEST(DeltaSolver, NoOpEditSplicesTheTail) {
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  clear_caches();
  // Find a ring with a multi-stage decomposition so the splice has a tail.
  for (const Graph& ring : exp::random_rings(20, 9, /*seed=*/55)) {
    DeltaSolver solver(ring);
    if (solver.decomposition().pair_count() < 2) continue;
    const Vertex v = solver.decomposition().pairs()[0].b.front();
    const std::size_t stages = solver.decomposition().pair_count();
    // Editing to the SAME weight reproduces every stage; v is peeled at
    // stage 0, so every later stage splices.
    const DeltaOutcome outcome = solver.update_weight(v, ring.weight(v));
    EXPECT_TRUE(outcome.delta_path);
    EXPECT_EQ(outcome.resolved_stages, 1u);
    EXPECT_EQ(outcome.spliced_stages, stages - 1);
    expect_matches_cold(solver, "no-op edit");
    // A second no-op edit hits the captured kernel rows: stage 0 re-solves
    // through the delta kernel with zero staging differences.
    const DeltaOutcome again = solver.update_weight(v, ring.weight(v));
    EXPECT_EQ(again.patched_stages, 1u);
    expect_matches_cold(solver, "repeated no-op edit");
    return;
  }
  FAIL() << "no multi-stage ring found in the family";
}

TEST(DeltaSolver, DisabledDeltaUpdatesFallsBackToFullSolve) {
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  hot_path_config().delta_updates = false;
  clear_caches();
  const util::PerfSnapshot before = util::PerfCounters::snapshot();
  util::Xoshiro256 rng(0xDE17A0005ULL);
  DeltaSolver solver(
      graph::make_ring(graph::random_integer_weights(7, rng, 6)));
  const DeltaOutcome outcome = solver.update_weight(3, Rational(11));
  EXPECT_FALSE(outcome.delta_path);
  EXPECT_EQ(outcome.resolved_stages, 0u);
  expect_matches_cold(solver, "delta disabled");
  const util::PerfSnapshot delta =
      util::PerfCounters::snapshot().minus(before);
  EXPECT_GE(delta.delta_fallbacks, 1u);
  EXPECT_EQ(delta.delta_hits, 0u);
}

TEST(DeltaSolver, RejectsBadEditsWithoutMutating) {
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  clear_caches();
  DeltaSolver solver(graph::make_ring(
      {Rational(1), Rational(2), Rational(3), Rational(4), Rational(5)}));
  EXPECT_THROW(solver.update_weight(5, Rational(1)), std::out_of_range);
  EXPECT_THROW(solver.update_weight(2, Rational(-1)), std::invalid_argument);
  EXPECT_EQ(solver.graph().weight(2), Rational(3));
  expect_matches_cold(solver, "after rejected edits");
}

TEST(KernelDeltaState, PatchedEvaluationsMatchPlainKernel) {
  // Direct differential on the kernel layer: after each single-position
  // edit + re-stage, the delta evaluation (patched or not) must equal the
  // stateless kernel at every λ.
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  util::Xoshiro256 rng(0xDE17A0006ULL);
  for (const bool cycle : {true, false}) {
    const std::vector<Rational> weights =
        graph::random_integer_weights(9, rng, 7);
    Graph g = cycle ? graph::make_ring(weights) : graph::make_path(weights);
    auto structure = bd::analyze_ring_structure(g);
    ASSERT_TRUE(structure.has_value());
    bd::KernelDeltaState state;
    const Rational lambdas[] = {Rational(1) / Rational(2),
                                Rational(2) / Rational(3), Rational(1)};
    for (const Rational& lambda : lambdas) {
      for (int edit = 0; edit < 10; ++edit) {
        const Vertex v = static_cast<Vertex>(rng.uniform_int(0, 8));
        g.set_weight(v, Rational(rng.uniform_int(1, 7)));
        bd::stage_component_weights(g.weights(), structure->components[0]);
        EXPECT_EQ(
            bd::kernel_maximal_minimizer_delta(g, *structure, lambda, state),
            bd::kernel_maximal_minimizer(g, *structure, lambda))
            << (cycle ? "cycle" : "path") << " lambda "
            << lambda.to_string();
      }
    }
    // Repeated same-λ evaluations with ≤1 edited position must be served by
    // the patch path.
    EXPECT_GT(state.patched_evals(), 0u);
    // invalidate() forces the next evaluation cold — and it must still agree.
    state.invalidate();
    EXPECT_EQ(bd::kernel_maximal_minimizer_delta(g, *structure, Rational(1),
                                                 state),
              bd::kernel_maximal_minimizer(g, *structure, Rational(1)));
  }
}

TEST(KernelDeltaState, FallsBackAcrossLambdaChangesAndReshapes) {
  ConfigGuard guard;
  util::Xoshiro256 rng(0xDE17A0007ULL);
  Graph g = graph::make_ring({Rational(1), Rational(2), Rational(3),
                              Rational(4), Rational(5), Rational(6)});
  auto structure = bd::analyze_ring_structure(g);
  ASSERT_TRUE(structure.has_value());
  bd::KernelDeltaState state;
  // A strictly distinct λ per call defeats the same-λ certificate every
  // time; results must still match, and no evaluation may count as patched.
  for (int i = 0; i < 6; ++i) {
    const Rational lambda = Rational(i + 1) / Rational(i + 2);
    EXPECT_EQ(
        bd::kernel_maximal_minimizer_delta(g, *structure, lambda, state),
        bd::kernel_maximal_minimizer(g, *structure, lambda));
  }
  EXPECT_EQ(state.patched_evals(), 0u);
  // Re-using the same state for a DIFFERENT graph shape must reject reuse
  // and still agree.
  Graph other = graph::make_path(
      {Rational(1), Rational(3), Rational(5), Rational(7)});
  auto other_structure = bd::analyze_ring_structure(other);
  ASSERT_TRUE(other_structure.has_value());
  const Rational half = Rational(1) / Rational(2);
  EXPECT_EQ(
      bd::kernel_maximal_minimizer_delta(other, *other_structure, half, state),
      bd::kernel_maximal_minimizer(other, *other_structure, half));
}

}  // namespace
}  // namespace ringshare
