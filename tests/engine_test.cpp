#include "engine/deviation_engine.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "engine/wire.hpp"
#include "exp/families.hpp"
#include "graph/builders.hpp"

namespace ringshare::engine {
namespace {

using game::DeviationKind;
using game::DeviationOptimum;
using game::DeviationSweep;
using game::DeviationTask;

const std::vector<DeviationKind> kAllKinds = {DeviationKind::kSybil,
                                              DeviationKind::kMisreport,
                                              DeviationKind::kCollusion};

void expect_same_optimum(const DeviationOptimum& a, const DeviationOptimum& b,
                         const std::string& context) {
  EXPECT_EQ(a.kind, b.kind) << context;
  EXPECT_EQ(a.vertex, b.vertex) << context;
  EXPECT_EQ(a.partner, b.partner) << context;
  EXPECT_EQ(a.t_star, b.t_star) << context;
  EXPECT_EQ(a.utility, b.utility) << context;
  EXPECT_EQ(a.honest_utility, b.honest_utility) << context;
  EXPECT_EQ(a.ratio, b.ratio) << context;
}

/// The load-bearing contract of the whole serving stack: solving THROUGH
/// pointed canonical space is bit-identical to the direct game-level solve,
/// for every kind, on every necklace up to n = 6. (DeviationSweep::run is
/// the direct path — it dispatches straight to the per-kind optimizers.)
TEST(DeviationEngine, BitIdenticalToDirectSweepOnExhaustiveNecklaces) {
  const DeviationEngine engine;
  DeviationSweep direct;
  direct.kinds = kAllKinds;
  for (std::size_t n = 3; n <= 6; ++n) {
    const std::vector<Graph> rings = exp::exhaustive_rings(n, /*max_weight=*/3);
    for (std::size_t i = 0; i < rings.size(); ++i) {
      for (const DeviationKind kind : kAllKinds) {
        for (const DeviationTask& task :
             game::deviation_tasks(rings[i], kind)) {
          const DeviationOptimum via_engine = engine.solve(rings[i], task);
          const DeviationOptimum via_direct = direct.run(rings[i], task);
          expect_same_optimum(
              via_engine, via_direct,
              "n=" + std::to_string(n) + " instance=" + std::to_string(i) +
                  " key=" + format_task_key(i, task));
        }
      }
    }
  }
}

/// Equivalent tasks — rotations, reflections, uniform scalings — share one
/// canonical key, and their translated optima agree where they must (the
/// ratio is a label/scale invariant; utilities scale with the instance).
TEST(DeviationEngine, SymmetricVariantsShareCanonicalKey) {
  const std::vector<Rational> base = {Rational(4), Rational(1), Rational(3),
                                      Rational(2), Rational(2)};
  const std::size_t n = base.size();
  const DeviationEngine engine;

  for (const DeviationKind kind : kAllKinds) {
    std::set<std::string> keys;
    std::set<std::string> ratios;
    for (std::size_t rot = 0; rot < n; ++rot) {
      for (const bool reflect : {false, true}) {
        for (const int scale : {1, 7}) {
          std::vector<Rational> weights(n);
          for (std::size_t j = 0; j < n; ++j) {
            const std::size_t src = reflect ? (rot + n - j) % n : (rot + j) % n;
            weights[j] = base[src] * Rational(scale);
          }
          const Graph ring = graph::make_ring(weights);
          // The deviator is wherever weight base[0] landed: vertex
          // (reflect ? rot : n - rot) % n ... simpler: find it.
          graph::Vertex v = 0;
          for (graph::Vertex u = 0; u < n; ++u)
            if (ring.weight(u) == base[0] * Rational(scale)) { v = u; break; }
          DeviationTask task;
          task.kind = kind;
          task.vertex = v;
          if (kind == DeviationKind::kCollusion)
            task.partner = ring.neighbors(v)[0];
          if (kind == DeviationKind::kCollusion) {
            // Partner weight varies with orientation; restrict to the
            // canonical-key assertion for the pair actually formed.
            const CanonicalTask canon = canonicalize_task(ring, task);
            EXPECT_FALSE(canon.key.empty());
            continue;
          }
          const CanonicalTask canon = canonicalize_task(ring, task);
          keys.insert(canon.key);
          ratios.insert(engine.solve(ring, task).ratio.to_string());
        }
      }
    }
    if (kind == DeviationKind::kMisreport) {
      // Misreport quotients rotation, reflection AND scaling: one key.
      EXPECT_EQ(keys.size(), 1u) << game::to_string(kind);
    } else if (kind == DeviationKind::kSybil) {
      // Sybil keeps the traversal direction (w₁ is direction-sensitive),
      // so the orbit splits into the two orientations of this
      // non-palindromic ring; rotations and scalings still coalesce.
      EXPECT_EQ(keys.size(), 2u) << game::to_string(kind);
    }
    if (kind != DeviationKind::kCollusion) {
      // The exact incentive ratio is a label/orientation/scale invariant
      // regardless of how finely the orbit splits.
      EXPECT_EQ(ratios.size(), 1u) << game::to_string(kind);
    }
  }
}

/// Canonical rings are integer-weighted coprime representatives and the
/// recorded scale translates them back exactly.
TEST(DeviationEngine, CanonicalizationNormalizesScale) {
  const Graph ring = graph::make_ring(
      {Rational(2, 3), Rational(1, 6), Rational(1, 2), Rational(1, 3)});
  DeviationTask task;
  task.kind = DeviationKind::kSybil;
  task.vertex = 2;
  const CanonicalTask canon = canonicalize_task(ring, task);

  for (graph::Vertex v = 0; v < canon.ring.vertex_count(); ++v)
    EXPECT_TRUE(canon.ring.weight(v).is_integer());
  // Vertex 0 of the canonical ring is the deviator.
  EXPECT_EQ(canon.task.vertex, 0u);
  EXPECT_EQ(canon.ring.weight(0) * canon.scale, ring.weight(2));
}

/// Route hashes agree across rotations, reflections and scalings of one
/// ring — the property fingerprint sharding relies on.
TEST(DeviationEngine, RouteHashIsSymmetryInvariant) {
  const std::vector<Rational> base = {Rational(5), Rational(1), Rational(4),
                                      Rational(2)};
  const std::size_t n = base.size();
  const std::size_t route = instance_route_hash(graph::make_ring(base));
  for (std::size_t rot = 0; rot < n; ++rot) {
    for (const bool reflect : {false, true}) {
      std::vector<Rational> weights(n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t src = reflect ? (rot + n - j) % n : (rot + j) % n;
        weights[j] = base[src] * Rational(3);
      }
      EXPECT_EQ(instance_route_hash(graph::make_ring(weights)), route);
    }
  }
}

TEST(Wire, TaskKeyRoundTrip) {
  for (const DeviationKind kind : kAllKinds) {
    DeviationTask task;
    task.kind = kind;
    task.vertex = 3;
    task.partner = kind == DeviationKind::kCollusion ? 4 : 0;
    const std::string key = format_task_key(12, task);
    const std::optional<TaskKeyParts> parts = parse_task_key(key);
    ASSERT_TRUE(parts) << key;
    EXPECT_EQ(parts->instance, 12u);
    EXPECT_EQ(parts->task.kind, kind);
    EXPECT_EQ(parts->task.vertex, 3u);
    EXPECT_EQ(parts->task.partner, task.partner);
  }
  EXPECT_FALSE(parse_task_key(""));
  EXPECT_FALSE(parse_task_key("i0"));
  EXPECT_FALSE(parse_task_key("i0.x3"));
  EXPECT_FALSE(parse_task_key("i0.c3"));
  EXPECT_FALSE(parse_task_key("x0.v3"));
}

TEST(Wire, ParsesRegistrationAndQueryLines) {
  std::string error;
  const auto reg = parse_request_line(
      R"({"instance": 2, "ring": ["4", "1", "3/2"]})", &error);
  ASSERT_TRUE(reg) << error;
  EXPECT_EQ(reg->instance, 2u);
  ASSERT_TRUE(reg->ring);
  EXPECT_EQ(reg->ring->size(), 3u);
  EXPECT_EQ((*reg->ring)[2], Rational(3, 2));
  EXPECT_FALSE(reg->req);

  const auto query = parse_request_line(R"({"req": 7, "task": "i2.v1"})");
  ASSERT_TRUE(query);
  EXPECT_EQ(query->req, 7u);
  EXPECT_EQ(query->task, "i2.v1");
  EXPECT_FALSE(query->ring);

  const auto both = parse_request_line(
      R"({"instance": 0, "ring": [2, 2, 2], "req": 1, "task": "i0.m0"})");
  ASSERT_TRUE(both);
  EXPECT_TRUE(both->instance && both->ring && both->req);

  EXPECT_FALSE(parse_request_line("{}", &error));
  EXPECT_FALSE(parse_request_line(R"({"req": 1})", &error));
  EXPECT_FALSE(parse_request_line(R"({"ring": [1, 2, 3]})", &error));
  EXPECT_FALSE(
      parse_request_line(R"({"instance": 0, "ring": ["bad"]})", &error));
}

}  // namespace
}  // namespace ringshare::engine
