// Parameterized property sweeps: every paper-level invariant, instantiated
// across a grid of instance families (TEST_P / INSTANTIATE_TEST_SUITE_P).
//
// Families × properties:
//   * Proposition 3 invariants of the decomposition,
//   * BD allocation axioms + Prop. 6 utilities,
//   * proportional-response fixed-point property of the balanced flow,
//   * truthfulness under weight misreporting (Thm 10 corollary),
//   * truthfulness under edge hiding,
//   * Lemma 9 honest-split anchor (rings only),
//   * Theorem 8 ratio ≤ 2 (rings only, exact).
#include <gtest/gtest.h>

#include <string>

#include "bd/allocation.hpp"
#include "exp/families.hpp"
#include "game/edge_manipulation.hpp"
#include "game/misreport.hpp"
#include "game/sybil_ring.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare {
namespace {

using game::Rational;
using graph::Graph;

struct FamilyCase {
  std::string name;
  Graph graph;
  bool is_ring;
};

std::vector<FamilyCase> family_grid() {
  std::vector<FamilyCase> cases;
  cases.push_back({"uniform_ring_5", exp::uniform_ring(5), true});
  cases.push_back({"uniform_ring_6", exp::uniform_ring(6), true});
  cases.push_back({"alternating_ring_6",
                   exp::alternating_ring(6, Rational(7)), true});
  cases.push_back({"single_heavy_ring_5",
                   exp::single_heavy_ring(5, Rational(40)), true});
  cases.push_back({"near_tight_H20", exp::near_tight_ring(Rational(20)),
                   true});
  cases.push_back({"adversarial_7ring",
                   graph::make_ring({Rational(7), Rational(6), Rational(22),
                                     Rational(5), Rational(48), Rational(9),
                                     Rational(2)}),
                   true});
  cases.push_back({"fractional_ring",
                   graph::make_ring({Rational(1, 3), Rational(5, 2),
                                     Rational(7, 4), Rational(2),
                                     Rational(9, 5)}),
                   true});
  cases.push_back({"fig1", graph::make_fig1_example(), false});
  cases.push_back({"k4",
                   graph::make_complete({Rational(1), Rational(3),
                                         Rational(2), Rational(5)}),
                   false});
  cases.push_back({"star5",
                   graph::make_star({Rational(3), Rational(1), Rational(4),
                                     Rational(1), Rational(5)}),
                   false});
  util::Xoshiro256 rng(4242);
  for (int i = 0; i < 4; ++i) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    cases.push_back({"random_ring_" + std::to_string(i),
                     graph::make_ring(graph::random_integer_weights(n, rng, 9)),
                     true});
  }
  for (int i = 0; i < 3; ++i) {
    cases.push_back({"random_graph_" + std::to_string(i),
                     graph::make_random_connected(6, 0.45, rng, 8), false});
  }
  return cases;
}

class PaperProperty : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(PaperProperty, Proposition3Invariants) {
  const FamilyCase& family = GetParam();
  const bd::Decomposition decomposition(family.graph);
  const auto violations =
      bd::proposition3_violations(family.graph, decomposition);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(PaperProperty, AllocationAxiomsAndProp6) {
  const FamilyCase& family = GetParam();
  const bd::Decomposition decomposition(family.graph);
  const bd::Allocation allocation = bd::bd_allocation(decomposition);
  const auto violations = bd::allocation_violations(decomposition, allocation);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(PaperProperty, ProportionalResponseFixedPoint) {
  const FamilyCase& family = GetParam();
  const bd::Decomposition decomposition(family.graph);
  const bd::Allocation allocation = bd::bd_allocation(decomposition);
  const auto violations =
      bd::fixed_point_violations(decomposition, allocation);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(PaperProperty, MisreportingIsTruthful) {
  const FamilyCase& family = GetParam();
  const bd::Decomposition decomposition(family.graph);
  for (graph::Vertex v = 0; v < family.graph.vertex_count(); ++v) {
    if (family.graph.weight(v).is_zero()) continue;
    const game::MisreportAnalysis analysis(family.graph, v);
    const Rational truthful = decomposition.utility(v);
    for (int i = 0; i <= 8; ++i) {
      const Rational x = family.graph.weight(v) * Rational(i, 8);
      EXPECT_LE(analysis.utility_at(x), truthful)
          << "v" << v << " x=" << x.to_string();
    }
  }
}

TEST_P(PaperProperty, EdgeHidingIsTruthful) {
  const FamilyCase& family = GetParam();
  for (graph::Vertex v = 0; v < family.graph.vertex_count(); ++v) {
    if (family.graph.degree(v) == 0) continue;
    const game::EdgeManipulationResult result =
        game::optimize_edge_hiding(family.graph, v);
    EXPECT_LE(result.best_utility, result.honest_utility) << "v" << v;
  }
}

TEST_P(PaperProperty, Lemma9HonestSplitAnchor) {
  const FamilyCase& family = GetParam();
  if (!family.is_ring) GTEST_SKIP() << "ring-only property";
  const bd::Decomposition decomposition(family.graph);
  for (graph::Vertex v = 0; v < family.graph.vertex_count(); ++v) {
    const auto [w1, w2] = game::honest_split_weights(family.graph, v);
    EXPECT_EQ(game::sybil_utility(family.graph, v, w1),
              decomposition.utility(v))
        << "v" << v;
  }
}

TEST_P(PaperProperty, Theorem8RatioAtMostTwo) {
  const FamilyCase& family = GetParam();
  if (!family.is_ring) GTEST_SKIP() << "ring-only property";
  game::SybilOptions options;
  options.samples_per_piece = 16;
  options.refinement_rounds = 16;
  for (graph::Vertex v = 0; v < family.graph.vertex_count(); ++v) {
    const game::SybilOptimum optimum =
        game::optimize_sybil_split(family.graph, v, options);
    EXPECT_LE(optimum.ratio, Rational(2)) << "v" << v;
    EXPECT_GE(optimum.ratio, Rational(1)) << "v" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PaperProperty, ::testing::ValuesIn(family_grid()),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ringshare
