// Unit tests for the Dinic max-flow substrate, including an independent
// Edmonds–Karp oracle for differential testing.
#include "flow/dinic.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "numeric/rational.hpp"
#include "util/rng.hpp"

namespace ringshare::flow {
namespace {

using num::Rational;

/// Independent oracle: Edmonds–Karp on integer capacities.
class EdmondsKarp {
 public:
  explicit EdmondsKarp(std::size_t n) : capacity_(n, std::vector<long>(n, 0)) {}

  void add(std::size_t u, std::size_t v, long c) { capacity_[u][v] += c; }

  long run(std::size_t s, std::size_t t) {
    long total = 0;
    const std::size_t n = capacity_.size();
    for (;;) {
      std::vector<long> parent(n, -1);
      parent[s] = static_cast<long>(s);
      std::queue<std::size_t> queue;
      queue.push(s);
      while (!queue.empty() && parent[t] < 0) {
        const std::size_t v = queue.front();
        queue.pop();
        for (std::size_t u = 0; u < n; ++u) {
          if (parent[u] < 0 && capacity_[v][u] > 0) {
            parent[u] = static_cast<long>(v);
            queue.push(u);
          }
        }
      }
      if (parent[t] < 0) return total;
      long bottleneck = std::numeric_limits<long>::max();
      for (std::size_t v = t; v != s;
           v = static_cast<std::size_t>(parent[v])) {
        bottleneck = std::min(
            bottleneck, capacity_[static_cast<std::size_t>(parent[v])][v]);
      }
      for (std::size_t v = t; v != s;
           v = static_cast<std::size_t>(parent[v])) {
        const auto p = static_cast<std::size_t>(parent[v]);
        capacity_[p][v] -= bottleneck;
        capacity_[v][p] += bottleneck;
      }
      total += bottleneck;
    }
  }

 private:
  std::vector<std::vector<long>> capacity_;
};

TEST(MaxFlow, SingleEdge) {
  MaxFlow<Rational> net(2);
  net.add_arc(0, 1, Rational(5));
  EXPECT_EQ(net.run(0, 1), Rational(5));
}

TEST(MaxFlow, DiamondNetwork) {
  // s=0, t=3; two disjoint paths of capacity 3 and 4.
  MaxFlow<Rational> net(4);
  net.add_arc(0, 1, Rational(3));
  net.add_arc(1, 3, Rational(3));
  net.add_arc(0, 2, Rational(4));
  net.add_arc(2, 3, Rational(4));
  EXPECT_EQ(net.run(0, 3), Rational(7));
}

TEST(MaxFlow, RationalCapacitiesExact) {
  MaxFlow<Rational> net(3);
  net.add_arc(0, 1, Rational(1, 3));
  net.add_arc(0, 1, Rational(1, 6));
  net.add_arc(1, 2, Rational(2, 5));
  EXPECT_EQ(net.run(0, 2), Rational(2, 5));
}

TEST(MaxFlow, BottleneckInMiddle) {
  MaxFlow<Rational> net(4);
  net.add_arc(0, 1, Rational(10));
  net.add_arc(1, 2, Rational(1, 7));
  net.add_arc(2, 3, Rational(10));
  EXPECT_EQ(net.run(0, 3), Rational(1, 7));
}

TEST(MaxFlow, InfiniteArcsCarryFlow) {
  MaxFlow<Rational> net(4);
  net.add_arc(0, 1, Rational(3, 2));
  const ArcId middle = net.add_infinite_arc(1, 2);
  net.add_arc(2, 3, Rational(1));
  EXPECT_EQ(net.run(0, 3), Rational(1));
  EXPECT_EQ(net.flow_on(middle), Rational(1));
}

TEST(MaxFlow, UnboundedPathThrows) {
  MaxFlow<Rational> net(3);
  net.add_infinite_arc(0, 1);
  net.add_infinite_arc(1, 2);
  EXPECT_THROW((void)net.run(0, 2), std::logic_error);
}

TEST(MaxFlow, SourceEqualsSinkThrows) {
  MaxFlow<Rational> net(2);
  EXPECT_THROW((void)net.run(0, 0), std::invalid_argument);
}

TEST(MaxFlow, ResidualSidesBeforeRunThrow) {
  MaxFlow<Rational> net(2);
  net.add_arc(0, 1, Rational(1));
  EXPECT_THROW((void)net.residual_reachable_from_source(), std::logic_error);
  EXPECT_THROW((void)net.residual_reaching_sink(), std::logic_error);
}

TEST(MaxFlow, MinCutSidesOnChain) {
  // 0 -(2)-> 1 -(1)-> 2 -(2)-> 3: unique min cut is the middle arc.
  MaxFlow<Rational> net(4);
  net.add_arc(0, 1, Rational(2));
  net.add_arc(1, 2, Rational(1));
  net.add_arc(2, 3, Rational(2));
  EXPECT_EQ(net.run(0, 3), Rational(1));
  const auto source_side = net.residual_reachable_from_source();
  EXPECT_TRUE(source_side[0]);
  EXPECT_TRUE(source_side[1]);
  EXPECT_FALSE(source_side[2]);
  EXPECT_FALSE(source_side[3]);
  const auto sink_side = net.residual_reaching_sink();
  EXPECT_FALSE(sink_side[0]);
  EXPECT_FALSE(sink_side[1]);
  EXPECT_TRUE(sink_side[2]);
  EXPECT_TRUE(sink_side[3]);
}

TEST(MaxFlow, MinCutLatticeMinimalVsMaximal) {
  // Two parallel bottlenecks of equal value: 0 -(1)-> 1 -(1)-> 2; min cuts
  // are {0|12} and {01|2}. Minimal source side is {0}; maximal is {0,1}.
  MaxFlow<Rational> net(3);
  net.add_arc(0, 1, Rational(1));
  net.add_arc(1, 2, Rational(1));
  EXPECT_EQ(net.run(0, 2), Rational(1));
  const auto minimal = net.residual_reachable_from_source();
  EXPECT_TRUE(minimal[0]);
  EXPECT_FALSE(minimal[1]);
  const auto reaches_sink = net.residual_reaching_sink();
  // Maximal source side = complement of reaches-sink: {0, 1}.
  EXPECT_FALSE(reaches_sink[0]);
  EXPECT_FALSE(reaches_sink[1]);
  EXPECT_TRUE(reaches_sink[2]);
}

TEST(MaxFlow, DifferentialAgainstEdmondsKarp) {
  util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(2, 7));
    MaxFlow<Rational> dinic(n);
    EdmondsKarp oracle(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.uniform01() < 0.35) {
          const long c = rng.uniform_int(1, 20);
          dinic.add_arc(u, v, Rational(c));
          oracle.add(u, v, c);
        }
      }
    }
    const Rational flow = dinic.run(0, n - 1);
    EXPECT_TRUE(flow.is_integer());
    EXPECT_EQ(flow.numerator().to_int64(), oracle.run(0, n - 1))
        << "trial " << trial;
  }
}

TEST(MaxFlow, RerunMatchesColdSolveUnderCapacityChurn) {
  util::Xoshiro256 rng(67);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(2, 6));
    MaxFlow<Rational> incremental(n);
    MaxFlow<Rational> cold(n);
    struct ArcRef {
      std::size_t u, v;
      ArcId id;
    };
    std::vector<ArcRef> arcs;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (u == v || rng.uniform01() >= 0.4) continue;
        const long c = rng.uniform_int(0, 15);
        const ArcId id = incremental.add_arc(u, v, Rational(c));
        cold.add_arc(u, v, Rational(c));
        arcs.push_back(ArcRef{u, v, id});
      }
    }
    (void)incremental.run(0, n - 1);
    auto value_of = [&](const MaxFlow<Rational>& net) {
      Rational total(0);
      for (const ArcRef& arc : arcs) {
        if (arc.u == 0) total += net.flow_on(arc.id);
        if (arc.v == 0) total -= net.flow_on(arc.id);
      }
      return total;
    };
    // Several rounds of mixed increases and decreases; the incremental
    // network carries its flow across rounds, the cold one restarts.
    for (int round = 0; round < 5; ++round) {
      for (const ArcRef& arc : arcs) {
        if (rng.uniform01() < 0.5) continue;
        const Rational cap(rng.uniform_int(0, 15));
        incremental.set_capacity(arc.id, cap);
        cold.set_capacity(arc.id, cap);
      }
      (void)incremental.rerun(0, n - 1);
      cold.reset();
      (void)cold.run(0, n - 1);
      EXPECT_EQ(value_of(incremental), value_of(cold))
          << "trial " << trial << " round " << round;
      // The extreme min-cut sides are flow-independent, so both engines
      // must report identical residual structure.
      EXPECT_EQ(incremental.residual_reachable_from_source(),
                cold.residual_reachable_from_source());
      EXPECT_EQ(incremental.residual_reaching_sink(),
                cold.residual_reaching_sink());
      // Feasibility after the drain/augment dance.
      std::vector<Rational> balance(n, Rational(0));
      for (const ArcRef& arc : arcs) {
        const Rational f = incremental.flow_on(arc.id);
        EXPECT_GE(f, Rational(0));
        balance[arc.u] -= f;
        balance[arc.v] += f;
      }
      for (std::size_t v = 1; v + 1 < n; ++v)
        EXPECT_EQ(balance[v], Rational(0));
    }
  }
}

TEST(MaxFlow, RerunHandlesInfiniteMiddleArcs) {
  // Parametric-network shape: s -> u (finite), u -> v' (infinite),
  // v' -> t (finite). Shrinking the source arc forces a drain through the
  // infinite arc; growing it back forces augmentation from the residual.
  MaxFlow<Rational> net(4);
  const ArcId source_arc = net.add_arc(0, 1, Rational(5));
  net.add_infinite_arc(1, 2);
  const ArcId sink_arc = net.add_arc(2, 3, Rational(3));
  EXPECT_EQ(net.run(0, 3), Rational(3));

  net.set_capacity(source_arc, Rational(1));
  (void)net.rerun(0, 3);
  EXPECT_EQ(net.flow_on(source_arc), Rational(1));
  EXPECT_EQ(net.flow_on(sink_arc), Rational(1));

  net.set_capacity(source_arc, Rational(7, 2));
  (void)net.rerun(0, 3);
  EXPECT_EQ(net.flow_on(sink_arc), Rational(3));
}

TEST(MaxFlow, RerunBeforeRunThrows) {
  MaxFlow<Rational> net(2);
  net.add_arc(0, 1, Rational(1));
  EXPECT_THROW((void)net.rerun(0, 1), std::logic_error);
}

TEST(MaxFlow, DeepPathDoesNotOverflowTheStack) {
  // A 120k-node chain: the recursive blocking-flow DFS this replaced would
  // recurse once per node and blow the thread stack.
  const std::size_t n = 120'000;
  MaxFlow<Rational> net(n);
  for (std::size_t v = 0; v + 1 < n; ++v)
    net.add_arc(v, v + 1, Rational(2));
  EXPECT_EQ(net.run(0, n - 1), Rational(2));
}

TEST(MaxFlow, DoubleInstantiationWorks) {
  MaxFlow<double> net(3);
  net.add_arc(0, 1, 0.5);
  net.add_arc(1, 2, 0.25);
  EXPECT_DOUBLE_EQ(net.run(0, 2), 0.25);
}

TEST(MaxFlow, FlowConservation) {
  util::Xoshiro256 rng(41);
  MaxFlow<Rational> net(6);
  struct ArcRef {
    std::size_t u, v;
    ArcId id;
  };
  std::vector<ArcRef> arcs;
  for (std::size_t u = 0; u < 6; ++u) {
    for (std::size_t v = 0; v < 6; ++v) {
      if (u != v && rng.uniform01() < 0.5) {
        arcs.push_back(ArcRef{u, v, net.add_arc(u, v, Rational(
            rng.uniform_int(1, 9)))});
      }
    }
  }
  const Rational total = net.run(0, 5);
  std::vector<Rational> balance(6, Rational(0));
  for (const ArcRef& arc : arcs) {
    const Rational f = net.flow_on(arc.id);
    EXPECT_GE(f, Rational(0));
    balance[arc.u] -= f;
    balance[arc.v] += f;
  }
  for (std::size_t v = 1; v + 1 < 6; ++v) EXPECT_EQ(balance[v], Rational(0));
  EXPECT_EQ(balance[5], total);
  EXPECT_EQ(balance[0], -total);
}

}  // namespace
}  // namespace ringshare::flow
