// Tests for the proportional response dynamics: convergence to the exact BD
// allocation utilities (Wu–Zhang / Prop. 6 cross-validation).
#include "dynamics/proportional_response.hpp"

#include <gtest/gtest.h>

#include "bd/decomposition.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::dynamics {
namespace {

using graph::make_path;
using graph::make_ring;
using graph::Rational;

DynamicsOptions damped_options() {
  DynamicsOptions options;
  options.damped = true;
  options.max_iterations = 400000;
  options.tolerance = 1e-13;
  return options;
}

TEST(Dynamics, SingleEdgeConvergesImmediately) {
  const Graph g = make_path({Rational(2), Rational(3)});
  const DynamicsResult result = run_dynamics(g);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.utilities[0], 3.0, 1e-9);
  EXPECT_NEAR(result.utilities[1], 2.0, 1e-9);
}

TEST(Dynamics, UniformRingFixedPoint) {
  const Graph g = make_ring(std::vector<Rational>(6, Rational(1)));
  const DynamicsResult result = run_dynamics(g, damped_options());
  EXPECT_TRUE(result.converged);
  for (const double u : result.utilities) EXPECT_NEAR(u, 1.0, 1e-8);
}

TEST(Dynamics, ConvergesToBdUtilitiesOnRings) {
  util::Xoshiro256 rng(307);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const Graph g = make_ring(graph::random_integer_weights(n, rng, 5));
    const DynamicsResult result = run_dynamics(g, damped_options());
    EXPECT_LT(utility_gap_to_bd(g, result), 5e-4)
        << "trial " << trial << " iterations " << result.iterations;
  }
}

TEST(Dynamics, ConvergesToBdUtilitiesOnRandomGraphs) {
  util::Xoshiro256 rng(311);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::make_random_connected(6, 0.5, rng, 4);
    const DynamicsResult result = run_dynamics(g, damped_options());
    EXPECT_LT(utility_gap_to_bd(g, result), 5e-4) << "trial " << trial;
  }
}

TEST(Dynamics, ConvergesOnFig1Example) {
  const Graph g = graph::make_fig1_example();
  const DynamicsResult result = run_dynamics(g, damped_options());
  const bd::Decomposition decomposition(g);
  // v3 is C class with α = 1/3: dynamics must find U = 3.
  EXPECT_NEAR(result.utilities[2], 3.0, 1e-6);
  EXPECT_LT(utility_gap_to_bd(g, result), 5e-4);
}

TEST(Dynamics, BudgetBalanceAtEveryIterate) {
  const Graph g = make_ring({Rational(1), Rational(4), Rational(2),
                             Rational(3)});
  const DynamicsResult result = run_dynamics(g, damped_options());
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    double shipped = 0;
    for (const double x : result.allocation[v]) shipped += x;
    EXPECT_NEAR(shipped, g.weight(v).to_double(), 1e-9);
  }
}

TEST(Dynamics, IterationCapRespected) {
  DynamicsOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;  // unreachable
  const Graph g = make_ring(std::vector<Rational>(4, Rational(1)));
  const DynamicsResult result = run_dynamics(g, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3u);
}

TEST(Dynamics, RoundRobinScheduleConverges) {
  // Asynchronous agents (no global clock) still reach the BD utilities —
  // the robustness dimension of the distributed protocol.
  util::Xoshiro256 rng(313);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const Graph g = make_ring(graph::random_integer_weights(n, rng, 5));
    DynamicsOptions options;
    options.schedule = UpdateSchedule::kRoundRobin;
    options.max_iterations = 200000;
    options.tolerance = 1e-13;
    const DynamicsResult result = run_dynamics(g, options);
    EXPECT_LT(utility_gap_to_bd(g, result), 5e-4) << "trial " << trial;
  }
}

TEST(Dynamics, RandomizedScheduleConverges) {
  util::Xoshiro256 rng(317);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_ring(graph::random_integer_weights(6, rng, 5));
    DynamicsOptions options;
    options.schedule = UpdateSchedule::kRandomized;
    options.seed = 11 + static_cast<std::uint64_t>(trial);
    options.max_iterations = 200000;
    options.tolerance = 1e-13;
    const DynamicsResult result = run_dynamics(g, options);
    EXPECT_LT(utility_gap_to_bd(g, result), 5e-4) << "trial " << trial;
  }
}

TEST(Dynamics, AsyncSelfDampsOnBipartiteStructures) {
  // The synchronous 2-cycle trap: asynchronous round-robin avoids it
  // without explicit damping.
  const Graph g = make_ring({Rational(1), Rational(5), Rational(1),
                             Rational(5)});
  DynamicsOptions options;
  options.schedule = UpdateSchedule::kRoundRobin;
  options.max_iterations = 200000;
  options.tolerance = 1e-13;
  const DynamicsResult result = run_dynamics(g, options);
  EXPECT_LT(utility_gap_to_bd(g, result), 1e-4);
}

TEST(Dynamics, SchedulesAgreeOnFinalUtilities) {
  const Graph g = make_ring({Rational(2), Rational(3), Rational(1),
                             Rational(4), Rational(2)});
  DynamicsOptions sync = damped_options();
  DynamicsOptions rr;
  rr.schedule = UpdateSchedule::kRoundRobin;
  rr.max_iterations = 300000;
  rr.tolerance = 1e-13;
  const auto a = run_dynamics(g, sync);
  const auto b = run_dynamics(g, rr);
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_NEAR(a.utilities[v], b.utilities[v], 1e-3) << "v" << v;
  }
}

TEST(Dynamics, UndampedMayOscillateButAverageIsRight) {
  // On even rings the plain dynamics can 2-cycle; the damped iterate is the
  // documented remedy. This test pins the *behavioural contrast* so the
  // damping option stays honest.
  const Graph g = make_ring({Rational(1), Rational(5), Rational(1),
                             Rational(5)});
  const DynamicsResult damped = run_dynamics(g, damped_options());
  EXPECT_LT(utility_gap_to_bd(g, damped), 1e-6);
}

}  // namespace
}  // namespace ringshare::dynamics
