// Tests for the parametrized-weight structure partition machinery.
#include "game/breakpoints.hpp"

#include <gtest/gtest.h>

#include "exp/families.hpp"
#include "game/sybil_ring.hpp"
#include "graph/builders.hpp"
#include "numeric/bigint.hpp"

namespace ringshare::game {
namespace {

using graph::make_path;
using graph::make_ring;

TEST(ParametrizedGraph, EvaluatesAffineWeights) {
  ParametrizedGraph pg(make_path({Rational(1), Rational(2), Rational(3)}),
                       Rational(0), Rational(10));
  pg.set_affine(1, AffineWeight{Rational(1), Rational(2)});  // 1 + 2t
  const Graph at3 = pg.at(Rational(3));
  EXPECT_EQ(at3.weight(0), Rational(1));
  EXPECT_EQ(at3.weight(1), Rational(7));
  EXPECT_EQ(at3.weight(2), Rational(3));
  EXPECT_THROW((void)pg.at(Rational(11)), std::out_of_range);
  EXPECT_THROW((void)pg.at(Rational(-1)), std::out_of_range);
}

TEST(ParametrizedGraph, NegativeWeightRejected) {
  ParametrizedGraph pg(make_path({Rational(1), Rational(2)}), Rational(0),
                       Rational(5));
  pg.set_affine(0, AffineWeight{Rational(1), Rational(-1)});  // 1 − t
  EXPECT_NO_THROW((void)pg.at(Rational(1)));
  EXPECT_THROW((void)pg.at(Rational(2)), std::domain_error);
}

TEST(AlphaFunction, EvaluatesLinearFractional) {
  // α(t) = (1 + 2t) / (3 + t).
  const AlphaFunction f{Rational(1), Rational(2), Rational(3), Rational(1)};
  EXPECT_EQ(f.at(Rational(0)), Rational(1, 3));
  EXPECT_EQ(f.at(Rational(1)), Rational(3, 4));
  EXPECT_FALSE(f.is_constant());
  const AlphaFunction constant{Rational(1), Rational(0), Rational(2),
                               Rational(0)};
  EXPECT_TRUE(constant.is_constant());
}

TEST(AlphaCrossings, LinearCrossing) {
  // (t)/(1) = (1)/(1) at t = 1.
  const AlphaFunction f1{Rational(0), Rational(1), Rational(1), Rational(0)};
  const AlphaFunction f2{Rational(1), Rational(0), Rational(1), Rational(0)};
  const auto roots = alpha_crossings(f1, f2, Rational(0), Rational(2));
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], Rational(1));
}

TEST(AlphaCrossings, QuadraticWithRationalRoots) {
  // (t)/(1) = (2)/(t): t² = 2·1 → irrational, no rational roots.
  const AlphaFunction f1{Rational(0), Rational(1), Rational(1), Rational(0)};
  const AlphaFunction f2{Rational(2), Rational(0), Rational(0), Rational(1)};
  EXPECT_TRUE(alpha_crossings(f1, f2, Rational(0), Rational(10)).empty());
  // (t)/(1) = (4)/(t): t² = 4 → t = 2 inside [0, 10].
  const AlphaFunction f3{Rational(4), Rational(0), Rational(0), Rational(1)};
  const auto roots = alpha_crossings(f1, f3, Rational(0), Rational(10));
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], Rational(2));
}

TEST(AlphaCrossings, RangeFilter) {
  const AlphaFunction f1{Rational(0), Rational(1), Rational(1), Rational(0)};
  const AlphaFunction f2{Rational(5), Rational(0), Rational(1), Rational(0)};
  EXPECT_TRUE(alpha_crossings(f1, f2, Rational(0), Rational(4)).empty());
  EXPECT_EQ(alpha_crossings(f1, f2, Rational(0), Rational(6)).size(), 1u);
}

TEST(AlphaFunctionBuilder, SumsAffineWeights) {
  ParametrizedGraph pg(make_path({Rational(1), Rational(2), Rational(3)}),
                       Rational(0), Rational(1));
  pg.set_affine(0, AffineWeight{Rational(0), Rational(1)});  // t
  const AlphaFunction f = alpha_function(pg, {1}, {0, 2});
  // numerator = w_0(t) + w_2 = t + 3; denominator = 2.
  EXPECT_EQ(f.num_c, Rational(3));
  EXPECT_EQ(f.num_s, Rational(1));
  EXPECT_EQ(f.den_c, Rational(2));
  EXPECT_EQ(f.den_s, Rational(0));
}

TEST(StructurePartition, ConstantStructureHasNoBreakpoints) {
  // Path (t, 10, 1): for t ∈ [0, 1] the bottleneck stays {2} ... verify no
  // spurious breakpoints on a stable family.
  ParametrizedGraph pg(make_path({Rational(1), Rational(10), Rational(1)}),
                       Rational(2), Rational(3));
  pg.set_affine(1, AffineWeight{Rational(10), Rational(1)});
  const StructurePartition partition = find_structure_partition(pg);
  EXPECT_TRUE(partition.breakpoints.empty());
  EXPECT_EQ(partition.piece_count(), 1u);
}

TEST(StructurePartition, DetectsSingleEdgeNoBreakpoints) {
  ParametrizedGraph pg(make_path({Rational(1), Rational(2)}), Rational(1),
                       Rational(3));
  pg.set_affine(0, AffineWeight{Rational(0), Rational(1)});
  const StructurePartition partition = find_structure_partition(pg);
  // Two vertices: structure flips when t crosses w = 2 (B/C swap) — the
  // bottleneck moves from {0} (t < 2) through B=C at t=2 to {1} (t > 2).
  EXPECT_GE(partition.breakpoints.size(), 1u);
  bool found_exact_at_two = false;
  for (const auto& bp : partition.breakpoints) {
    if (bp.exact && bp.value == Rational(2)) found_exact_at_two = true;
  }
  EXPECT_TRUE(found_exact_at_two);
}

TEST(StructurePartition, PieceBoundsAndMidpoints) {
  ParametrizedGraph pg(make_path({Rational(1), Rational(2)}), Rational(1),
                       Rational(3));
  pg.set_affine(0, AffineWeight{Rational(0), Rational(1)});
  const StructurePartition partition = find_structure_partition(pg);
  ASSERT_GE(partition.piece_count(), 2u);
  const auto [lo0, hi0] = partition.piece_bounds(0);
  EXPECT_EQ(lo0, Rational(1));
  EXPECT_EQ(hi0, partition.breakpoints[0].value);
  EXPECT_EQ(partition.piece_midpoint(0), Rational::midpoint(lo0, hi0));
  EXPECT_THROW((void)partition.piece_bounds(99), std::out_of_range);
}

TEST(StructurePartition, DegenerateRange) {
  ParametrizedGraph pg(make_path({Rational(1), Rational(2)}), Rational(1),
                       Rational(1));
  const StructurePartition partition = find_structure_partition(pg);
  EXPECT_TRUE(partition.breakpoints.empty());
  EXPECT_EQ(partition.piece_count(), 1u);
}

TEST(StructurePartition, MisreportOnStarFindsExactBreakpoint) {
  // Star hub 0 with weight x, two leaves of weight 1: for x < 2 the leaves
  // are the bottleneck (α = x/2); at x = 2 everything unifies (α = 1);
  // above, the hub becomes the bottleneck... the hub cannot exceed w; use
  // range [0, 4] to see the crossover at exactly x = 2.
  ParametrizedGraph pg(
      graph::make_star({Rational(1), Rational(1), Rational(1)}), Rational(0),
      Rational(4));
  pg.set_affine(0, AffineWeight{Rational(0), Rational(1)});
  const StructurePartition partition = find_structure_partition(pg);
  ASSERT_GE(partition.breakpoints.size(), 1u);
  bool found = false;
  for (const auto& bp : partition.breakpoints) {
    if (bp.value == Rational(2) && bp.exact) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(StructurePartition, ExactBreakpointsHaveDegenerateBrackets) {
  ParametrizedGraph pg(make_path({Rational(1), Rational(2)}), Rational(1),
                       Rational(3));
  pg.set_affine(0, AffineWeight{Rational(0), Rational(1)});
  const StructurePartition partition = find_structure_partition(pg);
  ASSERT_GE(partition.breakpoints.size(), 1u);
  for (const Breakpoint& bp : partition.breakpoints) {
    ASSERT_TRUE(bp.exact);
    EXPECT_EQ(bp.lo, bp.value);
    EXPECT_EQ(bp.hi, bp.value);
  }
}

TEST(StructurePartition, InexactBreakpointsCarryTightBrackets) {
  // Irrational α-crossings cannot be snapped to rational roots; the
  // partition must instead isolate them — by exact arithmetic on the
  // crossing quadratics — to a bracket far tighter than the bisection
  // resolution, whose endpoints still lie inside the adjacent pieces.
  // Random Sybil families reliably produce such crossings.
  const auto rings = exp::random_rings(8, 7, 777, 12);
  const Rational tight_width_bound =
      Rational(num::BigInt(1),
               num::BigInt(1).shifted_left(100));  // · range, below
  int inexact_seen = 0;
  for (const Graph& ring : rings) {
    for (Vertex v = 0; v < ring.vertex_count(); ++v) {
      const ParametrizedGraph family = sybil_family(ring, v);
      const StructurePartition partition = find_structure_partition(family);
      const Rational range = partition.t_hi - partition.t_lo;
      for (std::size_t i = 0; i < partition.breakpoints.size(); ++i) {
        const Breakpoint& bp = partition.breakpoints[i];
        if (bp.exact) {
          EXPECT_EQ(bp.lo, bp.value);
          EXPECT_EQ(bp.hi, bp.value);
          continue;
        }
        ++inexact_seen;
        EXPECT_LT(bp.lo, bp.hi);
        // The recorded value stays a low-height bisection point near the
        // bracket (it seeds downstream decompositions, so it must stay
        // cheap); only lo/hi carry the high-precision isolation.
        const Rational drift = bp.value < bp.lo ? bp.lo - bp.value
                                                : bp.value - bp.hi;
        EXPECT_LE(drift, range * Rational(num::BigInt(1),
                                          num::BigInt(1).shifted_left(40)));
        EXPECT_LE(bp.hi - bp.lo, range * tight_width_bound);
        EXPECT_EQ(family.signature(bp.lo), partition.piece_signatures[i]);
        EXPECT_EQ(family.signature(bp.hi), partition.piece_signatures[i + 1]);
      }
      if (inexact_seen >= 3) return;  // enough evidence; keep the test fast
    }
  }
  EXPECT_GE(inexact_seen, 1)
      << "family set produced no irrational breakpoints";
}

TEST(StructurePartition, SignaturesDifferAcrossBreakpoints) {
  ParametrizedGraph pg(
      graph::make_star({Rational(1), Rational(1), Rational(1)}), Rational(0),
      Rational(4));
  pg.set_affine(0, AffineWeight{Rational(0), Rational(1)});
  const StructurePartition partition = find_structure_partition(pg);
  for (std::size_t i = 0; i + 1 < partition.piece_count(); ++i) {
    EXPECT_NE(partition.piece_signatures[i], partition.piece_signatures[i + 1])
        << "adjacent pieces share a signature at breakpoint " << i;
  }
}

}  // namespace
}  // namespace ringshare::game
