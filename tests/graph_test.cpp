// Unit tests for the graph substrate.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "graph/dot.hpp"
#include "util/rng.hpp"

namespace ringshare::graph {
namespace {

TEST(Graph, AddVerticesAndEdges) {
  Graph g;
  EXPECT_EQ(g.vertex_count(), 0u);
  const Vertex a = g.add_vertex(Rational(1));
  const Vertex b = g.add_vertex(Rational(2));
  EXPECT_EQ(g.vertex_count(), 2u);
  g.add_edge(a, b);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_TRUE(g.has_edge(b, a));
  EXPECT_EQ(g.degree(a), 1u);
}

TEST(Graph, RejectsSelfLoopsAndBadIndices) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_vertex(Rational(-1)), std::invalid_argument);
  EXPECT_THROW(Graph({Rational(-1)}), std::invalid_argument);
}

TEST(Graph, DuplicateEdgesIgnored) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto neighbors = g.neighbors(2);
  EXPECT_EQ(std::vector<Vertex>(neighbors.begin(), neighbors.end()),
            (std::vector<Vertex>{0, 3, 4}));
}

TEST(Graph, WeightsAndTotals) {
  Graph g({Rational(1), Rational(1, 2), Rational(3)});
  EXPECT_EQ(g.total_weight(), Rational(9, 2));
  g.set_weight(0, Rational(2));
  EXPECT_EQ(g.weight(0), Rational(2));
  const std::vector<Vertex> set = {0, 2};
  EXPECT_EQ(g.set_weight(set), Rational(5));
  EXPECT_THROW(g.set_weight(0, Rational(-1)), std::invalid_argument);
}

TEST(Graph, NeighborhoodOfSet) {
  // Path 0-1-2-3.
  Graph g = make_path({Rational(1), Rational(1), Rational(1), Rational(1)});
  const std::vector<Vertex> set = {1};
  EXPECT_EQ(g.neighborhood(set), (std::vector<Vertex>{0, 2}));
  const std::vector<Vertex> ends = {0, 3};
  EXPECT_EQ(g.neighborhood(ends), (std::vector<Vertex>{1, 2}));
  const std::vector<Vertex> adjacent = {1, 2};
  // Γ(S) may intersect S when S is not independent.
  EXPECT_EQ(g.neighborhood(adjacent), (std::vector<Vertex>{0, 1, 2, 3}));
}

TEST(Graph, IndependenceCheck) {
  Graph g = make_path({Rational(1), Rational(1), Rational(1), Rational(1)});
  const std::vector<Vertex> independent = {0, 2};
  const std::vector<Vertex> dependent = {1, 2};
  EXPECT_TRUE(g.is_independent(independent));
  EXPECT_FALSE(g.is_independent(dependent));
}

TEST(Graph, Connectivity) {
  Graph g(4);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
  EXPECT_TRUE(Graph(0).is_connected());
}

TEST(Graph, EdgesListSorted) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  const auto edges = g.edges();
  EXPECT_EQ(edges, (std::vector<std::pair<Vertex, Vertex>>{
                       {0, 1}, {0, 2}, {1, 3}}));
}

TEST(InducedSubgraph, RemapsVerticesAndEdges) {
  Graph g = make_ring({Rational(1), Rational(2), Rational(3), Rational(4),
                       Rational(5)});
  const std::vector<Vertex> keep = {1, 2, 4};
  const InducedSubgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.vertex_count(), 3u);
  EXPECT_EQ(sub.to_parent, (std::vector<Vertex>{1, 2, 4}));
  EXPECT_EQ(sub.graph.weight(0), Rational(2));
  EXPECT_EQ(sub.graph.weight(2), Rational(5));
  // Only edge 1-2 survives (4 is adjacent to 3 and 0 in the ring).
  EXPECT_EQ(sub.graph.edge_count(), 1u);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_EQ(*sub.from_parent[4], 2u);
  EXPECT_FALSE(sub.from_parent[0].has_value());
}

TEST(Builders, RingHasCycleStructure) {
  Graph g = make_ring(std::vector<Rational>(6, Rational(1)));
  EXPECT_EQ(g.vertex_count(), 6u);
  EXPECT_EQ(g.edge_count(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_ring({Rational(1), Rational(1)}), std::invalid_argument);
}

TEST(Builders, PathHasEndpoints) {
  Graph g = make_path({Rational(1), Rational(1), Rational(1)});
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(Builders, CompleteAndStar) {
  Graph k4 = make_complete(std::vector<Rational>(4, Rational(1)));
  EXPECT_EQ(k4.edge_count(), 6u);
  Graph s5 = make_star(std::vector<Rational>(5, Rational(1)));
  EXPECT_EQ(s5.edge_count(), 4u);
  EXPECT_EQ(s5.degree(0), 4u);
}

TEST(Builders, RandomConnectedIsConnected) {
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 20; ++i) {
    Graph g = make_random_connected(8, 0.4, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.vertex_count(), 8u);
    for (Vertex v = 0; v < 8; ++v) {
      EXPECT_GE(g.weight(v), Rational(1));
    }
  }
}

TEST(Builders, Fig1ExampleShape) {
  Graph g = make_fig1_example();
  EXPECT_EQ(g.vertex_count(), 6u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(3, 5));
}

TEST(Dot, ExportsNodesAndEdges) {
  Graph g = make_path({Rational(1), Rational(2)});
  const std::string dot = to_dot(g, {"B1", "C1"});
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("B1"), std::string::npos);
}

}  // namespace
}  // namespace ringshare::graph
