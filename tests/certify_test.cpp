// Tests for the grid-certification module and the dynamics convergence
// tracer.
#include "exp/certify.hpp"

#include <gtest/gtest.h>

#include "dynamics/proportional_response.hpp"
#include "exp/families.hpp"
#include "graph/builders.hpp"

namespace ringshare::exp {
namespace {

game::SybilOptions quick_options() {
  game::SybilOptions options;
  options.samples_per_piece = 12;
  options.refinement_rounds = 12;
  return options;
}

TEST(Certify, TriangleGridRespectsBound) {
  const Certificate certificate = certify_rings(3, 3, quick_options());
  EXPECT_EQ(certificate.ring_size, 3u);
  EXPECT_EQ(certificate.instances, 10u);  // ternary bracelets of length 3
  EXPECT_EQ(certificate.agents, 30u);
  EXPECT_TRUE(certificate.bound_respected);
  EXPECT_LE(certificate.max_ratio, game::Rational(2));
  EXPECT_GE(certificate.max_ratio, game::Rational(1));
  EXPECT_EQ(certificate.extremal_weights.size(), 3u);
  EXPECT_FALSE(certificate.summary().empty());
}

TEST(Certify, UniformGridHasNoGain) {
  // Weight alphabet {1}: only the uniform ring — no agent can gain.
  const Certificate certificate = certify_rings(4, 1, quick_options());
  EXPECT_EQ(certificate.instances, 1u);
  EXPECT_EQ(certificate.agents_with_gain, 0u);
  EXPECT_EQ(certificate.max_ratio, game::Rational(1));
}

TEST(Certify, OddRingsShowGainEvenRingsDoNot) {
  const Certificate odd = certify_rings(5, 2, quick_options());
  const Certificate even = certify_rings(4, 2, quick_options());
  EXPECT_GT(odd.agents_with_gain, 0u);
  EXPECT_GT(odd.max_ratio, game::Rational(1));
  EXPECT_EQ(even.max_ratio, game::Rational(1));
  EXPECT_TRUE(odd.bound_respected);
  EXPECT_TRUE(even.bound_respected);
}

TEST(ConvergenceTrace, GapDecreasesAlongCheckpoints) {
  const graph::Graph g = graph::make_ring(
      {Rational(4), Rational(1), Rational(3), Rational(2), Rational(5)});
  dynamics::DynamicsOptions options;
  options.damped = true;
  const auto trace =
      dynamics::trace_convergence(g, options, {10, 100, 1000, 10000});
  ASSERT_EQ(trace.gaps.size(), 4u);
  for (std::size_t i = 1; i < trace.gaps.size(); ++i) {
    EXPECT_LE(trace.gaps[i], trace.gaps[i - 1] + 1e-12) << "checkpoint " << i;
  }
  // Convergence: slope of log(gap) vs log(t) is negative.
  EXPECT_LT(trace.log_log_slope(), -0.5);
}

TEST(ConvergenceTrace, SlowInstanceHasSublinearSlope) {
  // The known slow regime decays roughly like 1/t; the fitted slope must
  // be clearly negative but finite (not a geometric cliff).
  util::Xoshiro256 rng(909);
  const graph::Graph g =
      graph::make_ring(graph::random_integer_weights(7, rng, 9));
  dynamics::DynamicsOptions options;
  options.damped = true;
  const auto trace =
      dynamics::trace_convergence(g, options, {100, 1000, 10000, 100000});
  EXPECT_LT(trace.log_log_slope(), -0.3);
}

TEST(ConvergenceTrace, EmptyAndSingleCheckpoints) {
  const graph::Graph g = graph::make_ring(
      {Rational(1), Rational(1), Rational(1)});
  dynamics::DynamicsOptions options;
  const auto empty = dynamics::trace_convergence(g, options, {});
  EXPECT_EQ(empty.log_log_slope(), 0.0);
  const auto single = dynamics::trace_convergence(g, options, {10});
  EXPECT_EQ(single.log_log_slope(), 0.0);
  EXPECT_EQ(single.gaps.size(), 1u);
}

}  // namespace
}  // namespace ringshare::exp
