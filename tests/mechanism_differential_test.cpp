// Differential verification of the mechanism zoo: every ported comparator
// ("prop", "karma") is cross-checked against a test-local transfer-matrix
// reference and a uniform rational grid search on exhaustive small
// necklaces — mirroring deviation_differential_test.cpp for BD. The
// symbolic optimizer must reproduce the reference utility at its reported
// optimum bit-identically, dominate every grid sample, agree on honest
// utilities, and certify misreport-monotonicity (ratio exactly 1). The BD
// implementation behind the interface is additionally pinned bit-identical
// to the historical optimize_deviation path, and the engine's canonical
// solve-and-translate must match the direct solve for every mechanism.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string_view>
#include <vector>

#include "engine/deviation_engine.hpp"
#include "exp/families.hpp"
#include "game/deviation.hpp"

namespace ringshare::game {
namespace {

/// Transfer-matrix reference for "prop": materialize every transfer
/// x_{u→v} = w_u·w_v / Σ_{x∈Γ(u)} w_x, assert u's budget is fully spent
/// whenever it has a positive-weight neighbor, and read utilities off the
/// column sums. Structured deliberately unlike the library implementation
/// (which accumulates per receiver).
std::vector<Rational> prop_reference(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<Rational> out(n, Rational(0));
  for (Vertex u = 0; u < n; ++u) {
    Rational pot(0);
    for (const Vertex x : g.neighbors(u)) pot = pot + g.weight(x);
    if (pot.is_zero()) continue;
    Rational spent(0);
    for (const Vertex v : g.neighbors(u)) {
      const Rational transfer = g.weight(u) * g.weight(v) / pot;
      out[v] = out[v] + transfer;
      spent = spent + transfer;
    }
    EXPECT_EQ(spent, g.weight(u)) << "prop budget leak at u=" << u;
  }
  return out;
}

/// Transfer-matrix reference for "karma": credits k_v = w_v / Σ_{x∈Γ(v)} w_x
/// first, then x_{u→v} = w_u·k_v / Σ_{x∈Γ(u)} k_x with the same budget
/// assertion.
std::vector<Rational> karma_reference(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<Rational> credit(n, Rational(0));
  for (Vertex v = 0; v < n; ++v) {
    Rational pot(0);
    for (const Vertex x : g.neighbors(v)) pot = pot + g.weight(x);
    if (!pot.is_zero()) credit[v] = g.weight(v) / pot;
  }
  std::vector<Rational> out(n, Rational(0));
  for (Vertex u = 0; u < n; ++u) {
    Rational credit_pot(0);
    for (const Vertex x : g.neighbors(u))
      credit_pot = credit_pot + credit[x];
    if (credit_pot.is_zero()) continue;
    Rational spent(0);
    for (const Vertex v : g.neighbors(u)) {
      const Rational transfer = g.weight(u) * credit[v] / credit_pot;
      out[v] = out[v] + transfer;
      spent = spent + transfer;
    }
    EXPECT_EQ(spent, g.weight(u)) << "karma budget leak at u=" << u;
  }
  return out;
}

std::vector<Rational> reference_utilities(std::string_view tag,
                                          const Graph& g) {
  if (tag == "prop") return prop_reference(g);
  if (tag == "karma") return karma_reference(g);
  throw std::logic_error("reference_utilities: no reference for mechanism");
}

/// The deviator's total utility at parameter t under `tag`, evaluated on
/// the deviated graph by the transfer-matrix reference — independent of
/// the symbolic s-space optimizer under test.
Rational reference_deviated_utility(std::string_view tag, const Graph& ring,
                                    const DeviationTask& task,
                                    const Rational& t) {
  switch (task.kind) {
    case DeviationKind::kSybil: {
      const ParametrizedGraph family = sybil_family(ring, task.vertex);
      const Graph at = family.at(t);
      const std::vector<Rational> u = reference_utilities(tag, at);
      return u.front() + u.back();  // the two Sybil copies: path endpoints
    }
    case DeviationKind::kMisreport: {
      Graph g = ring;
      g.set_weight(task.vertex, t);
      return reference_utilities(tag, g)[task.vertex];
    }
    case DeviationKind::kCollusion: {
      const ParametrizedGraph family =
          collusion_family(ring, task.vertex, task.partner);
      return reference_utilities(tag, family.at(t))[0];
    }
  }
  throw std::logic_error("reference_deviated_utility: bad kind");
}

/// Parameter range of one task ([0, w_v] or [0, w_v + w_partner]).
Rational parameter_cap(const Graph& ring, const DeviationTask& task) {
  if (task.kind == DeviationKind::kCollusion)
    return ring.weight(task.vertex) + ring.weight(task.partner);
  return ring.weight(task.vertex);
}

Rational reference_honest_utility(std::string_view tag, const Graph& ring,
                                  const DeviationTask& task) {
  const std::vector<Rational> u = reference_utilities(tag, ring);
  if (task.kind == DeviationKind::kCollusion)
    return u[task.vertex] + u[task.partner];
  return u[task.vertex];
}

/// The differential core, per comparator mechanism: the exact optimizer
/// must (a) reproduce the reference utility at its optimum bit-identically,
/// (b) dominate a `grid_points + 1`-point uniform rational grid, (c) agree
/// with the reference on honest utilities, and (d) certify misreport
/// monotonicity (ratio exactly 1 — both comparators pay more for a larger
/// report, so the truthful report is optimal).
void check_ring(const Graph& ring, int grid_points,
                const DeviationOptions& options) {
  const DeviationKind kinds[] = {DeviationKind::kSybil,
                                 DeviationKind::kMisreport,
                                 DeviationKind::kCollusion};
  for (const std::string_view tag : {"prop", "karma"}) {
    const std::optional<MechanismId> id = mechanism_from_tag(tag);
    ASSERT_TRUE(id.has_value());
    for (const DeviationKind kind : kinds) {
      for (const DeviationTask& task : deviation_tasks(ring, kind, *id)) {
        const DeviationOptimum optimum =
            optimize_deviation(ring, task, options);
        EXPECT_EQ(optimum.mechanism, *id);

        // (a) The reported utility is attained: recompute at t_star with
        // the transfer-matrix reference, bit-identical.
        EXPECT_EQ(optimum.utility,
                  reference_deviated_utility(tag, ring, task, optimum.t_star))
            << tag << " " << to_string(kind) << " v=" << task.vertex;

        // (c) Honest utilities agree with the reference bit-identically.
        EXPECT_EQ(optimum.honest_utility,
                  reference_honest_utility(tag, ring, task))
            << tag << " " << to_string(kind) << " v=" << task.vertex;

        // (b) Grid domination: no uniform rational sample beats the
        // optimum.
        const Rational cap = parameter_cap(ring, task);
        for (int k = 0; k <= grid_points; ++k) {
          const Rational t = cap * Rational(k, grid_points);
          EXPECT_LE(reference_deviated_utility(tag, ring, task, t),
                    optimum.utility)
              << tag << " " << to_string(kind) << " v=" << task.vertex
              << " grid k=" << k;
        }

        // (d) Both comparators are misreport-monotone, so the certified
        // misreport ratio is exactly 1 — the zoo analogue of Theorem 10.
        // (No ratio-2 bound is asserted: the paper's theorem is about BD,
        // and measuring where comparators exceed it is the point.)
        EXPECT_GT(optimum.ratio, Rational(0));
        if (kind == DeviationKind::kMisreport)
          EXPECT_EQ(optimum.ratio, Rational(1))
              << tag << " v=" << task.vertex;
      }
    }
  }
}

// Exhaustive n = 4 necklaces with weight numerators <= 3, with the
// optimizer's own grid cross-check armed on top of the test's grid.
TEST(MechanismDifferential, ExhaustiveN4CrossChecked) {
  DeviationOptions options;
  options.cross_check = true;
  for (const Graph& ring : exp::exhaustive_rings(4, 3))
    check_ring(ring, /*grid_points=*/8, options);
}

// Exhaustive n = 5 necklaces with weight numerators <= 2.
TEST(MechanismDifferential, ExhaustiveN5) {
  for (const Graph& ring : exp::exhaustive_rings(5, 2))
    check_ring(ring, /*grid_points=*/8, {});
}

// n = 6 necklaces with weight numerators <= 4, deterministically sampled
// (every 17th necklace) — the same slice the BD differential suite takes.
TEST(MechanismDifferential, SampledN6MaxWeight4) {
  const std::vector<Graph> rings = exp::exhaustive_rings(6, 4);
  ASSERT_FALSE(rings.empty());
  for (std::size_t i = 0; i < rings.size(); i += 17)
    check_ring(rings[i], /*grid_points=*/6, {});
}

// The refactor's parity pin: BD driven through the Mechanism interface is
// bit-identical to the historical optimize_deviation path — same t_star,
// utility, honest utility, and ratio on every task of every exhaustive
// n = 5 necklace. BdMechanism::optimize IS the piece-solver pipeline and
// BdMechanism::utilities reads the same decomposition, so any divergence
// here means the interface extraction changed BD behavior.
TEST(MechanismDifferential, BdViaInterfaceBitIdenticalToLegacy) {
  const DeviationKind kinds[] = {DeviationKind::kSybil,
                                 DeviationKind::kMisreport,
                                 DeviationKind::kCollusion};
  for (const Graph& ring : exp::exhaustive_rings(5, 2)) {
    for (const DeviationKind kind : kinds) {
      for (const DeviationTask& task : deviation_tasks(ring, kind)) {
        const DeviationOptimum legacy = optimize_deviation(ring, task);
        const DeviationOptimum via =
            optimize_deviation_via_mechanism(ring, task);
        EXPECT_EQ(via.t_star, legacy.t_star)
            << to_string(kind) << " v=" << task.vertex;
        EXPECT_EQ(via.utility, legacy.utility);
        EXPECT_EQ(via.honest_utility, legacy.honest_utility);
        EXPECT_EQ(via.ratio, legacy.ratio);
        EXPECT_EQ(via.mechanism, kBdMechanismId);
      }
    }
  }
}

// The engine's canonicalize → solve → translate path must be bit-identical
// to the direct solve for EVERY registered mechanism (the contract in
// game/mechanism.hpp is exactly what makes the translation sound).
TEST(MechanismDifferential, EnginePathMatchesDirectSolveForAllMechanisms) {
  const engine::DeviationEngine eng;
  const DeviationKind kinds[] = {DeviationKind::kSybil,
                                 DeviationKind::kMisreport,
                                 DeviationKind::kCollusion};
  const std::vector<Graph> rings = exp::random_rings(4, 6, 11, 9);
  for (const Graph& ring : rings) {
    for (MechanismId id = 0; id < mechanism_count(); ++id) {
      for (const DeviationKind kind : kinds) {
        for (const DeviationTask& task : deviation_tasks(ring, kind, id)) {
          const DeviationOptimum direct = optimize_deviation(ring, task);
          const DeviationOptimum routed = eng.solve(ring, task);
          const std::string_view tag = mechanism(id).tag();
          EXPECT_EQ(routed.t_star, direct.t_star)
              << tag << " " << to_string(kind) << " v=" << task.vertex;
          EXPECT_EQ(routed.utility, direct.utility);
          EXPECT_EQ(routed.honest_utility, direct.honest_utility);
          EXPECT_EQ(routed.ratio, direct.ratio);
          EXPECT_EQ(routed.mechanism, id);
        }
      }
    }
  }
}

// Canonical cache keys never collide across mechanisms: the same task under
// different mechanisms canonicalizes to different keys (BD unprefixed for
// checkpoint/cache compatibility, others "<tag>:"-prefixed).
TEST(MechanismDifferential, CanonicalKeysAreMechanismNamespaced) {
  const Graph ring = exp::uniform_ring(5);
  DeviationTask task;
  task.kind = DeviationKind::kMisreport;
  task.vertex = 2;
  const std::string bd_key = engine::canonicalize_task(ring, task).key;
  EXPECT_EQ(bd_key.find(':'), std::string::npos);
  for (MechanismId id = 1; id < mechanism_count(); ++id) {
    task.mechanism = id;
    const std::string key = engine::canonicalize_task(ring, task).key;
    const std::string prefix = std::string(mechanism(id).tag()) + ":";
    EXPECT_EQ(key, prefix + bd_key);
  }
}

// Registry basics: the built-ins hold their documented ids and tags, and
// lookups are total-or-nullopt / total-or-throw.
TEST(MechanismDifferential, RegistryBuiltins) {
  ASSERT_GE(mechanism_count(), 3u);
  EXPECT_EQ(mechanism(kBdMechanismId).tag(), "bd");
  EXPECT_EQ(mechanism(1).tag(), "prop");
  EXPECT_EQ(mechanism(2).tag(), "karma");
  EXPECT_EQ(mechanism_from_tag("bd"), kBdMechanismId);
  EXPECT_EQ(mechanism_from_tag("prop"), MechanismId{1});
  EXPECT_EQ(mechanism_from_tag("karma"), MechanismId{2});
  EXPECT_FALSE(mechanism_from_tag("no_such_mechanism").has_value());
  EXPECT_THROW((void)mechanism(MechanismId{999999}), std::out_of_range);
}

// mechanism_profile: budget balance pins total utility to the total weight
// for all three built-ins, and the uniform ring is a fixed point where
// every mechanism gives every agent exactly its weight back (share 1).
TEST(MechanismDifferential, ProfileBudgetBalanceAndUniformFixedPoint) {
  const Graph uniform = exp::uniform_ring(6);
  Rational total_weight(0);
  for (Vertex v = 0; v < uniform.vertex_count(); ++v)
    total_weight = total_weight + uniform.weight(v);
  for (MechanismId id = 0; id < 3; ++id) {
    const MechanismProfile profile = mechanism_profile(mechanism(id), uniform);
    EXPECT_EQ(profile.total_utility, total_weight) << mechanism(id).tag();
    EXPECT_EQ(profile.min_share, Rational(1)) << mechanism(id).tag();
    EXPECT_NEAR(profile.nash_welfare, 1.0, 1e-12);
  }
  // Budget balance also on a lopsided instance.
  const Graph heavy = exp::single_heavy_ring(5, Rational(40));
  Rational heavy_total(0);
  for (Vertex v = 0; v < heavy.vertex_count(); ++v)
    heavy_total = heavy_total + heavy.weight(v);
  for (MechanismId id = 0; id < 3; ++id)
    EXPECT_EQ(mechanism_profile(mechanism(id), heavy).total_utility,
              heavy_total)
        << mechanism(id).tag();
}

// Precondition surface of the interface path mirrors the BD optimizers'.
TEST(MechanismDifferential, InvalidArgumentsThrow) {
  const Graph ring = exp::uniform_ring(4);
  DeviationTask task;
  task.mechanism = 1;  // prop
  task.kind = DeviationKind::kMisreport;
  task.vertex = 99;
  EXPECT_THROW((void)optimize_deviation(ring, task), std::invalid_argument);
  task.kind = DeviationKind::kCollusion;
  task.vertex = 0;
  task.partner = 2;  // not adjacent
  EXPECT_THROW((void)optimize_deviation(ring, task), std::invalid_argument);
}

}  // namespace
}  // namespace ringshare::game
