// Tests for the Sybil attack on rings: the split construction, Lemma 9, the
// optimizer, and — the headline — Theorem 8's bound of 2, exactly.
#include "game/sybil_ring.hpp"

#include <gtest/gtest.h>

#include "exp/families.hpp"
#include "game/incentive_ratio.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::game {
namespace {

using graph::make_ring;

TEST(SplitRing, BuildsPathWithCorrectWeights) {
  const Graph ring = make_ring({Rational(5), Rational(1), Rational(2),
                                Rational(3)});
  const SybilSplit split = split_ring(ring, 0, Rational(2), Rational(3));
  EXPECT_EQ(split.path.vertex_count(), 5u);
  EXPECT_EQ(split.path.weight(split.v1), Rational(2));
  EXPECT_EQ(split.path.weight(split.v2), Rational(3));
  EXPECT_EQ(split.path.degree(split.v1), 1u);
  EXPECT_EQ(split.path.degree(split.v2), 1u);
  // Interior weights preserved in ring order (successor of 0 is 1).
  EXPECT_EQ(split.path.weight(1), Rational(1));
  EXPECT_EQ(split.path.weight(2), Rational(2));
  EXPECT_EQ(split.path.weight(3), Rational(3));
  EXPECT_EQ(split.ring_to_path[2], 2u);
}

TEST(SplitRing, RejectsNonRings) {
  const Graph path = graph::make_path({Rational(1), Rational(1), Rational(1)});
  EXPECT_THROW((void)split_ring(path, 0, Rational(0), Rational(1)),
               std::invalid_argument);
  Graph two_triangles(6);
  for (graph::Vertex v : {0u, 1u, 2u}) {
    two_triangles.set_weight(v, Rational(1));
    two_triangles.set_weight(v + 3, Rational(1));
  }
  two_triangles.add_edge(0, 1);
  two_triangles.add_edge(1, 2);
  two_triangles.add_edge(2, 0);
  two_triangles.add_edge(3, 4);
  two_triangles.add_edge(4, 5);
  two_triangles.add_edge(5, 3);
  EXPECT_THROW((void)split_ring(two_triangles, 0, Rational(0), Rational(1)),
               std::invalid_argument);
}

TEST(HonestSplit, WeightsSumToEndowment) {
  util::Xoshiro256 rng(501);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const Graph ring = make_ring(graph::random_integer_weights(n, rng, 6));
    for (graph::Vertex v = 0; v < n; ++v) {
      const auto [w1, w2] = honest_split_weights(ring, v);
      EXPECT_EQ(w1 + w2, ring.weight(v)) << "trial " << trial;
      EXPECT_GE(w1, Rational(0));
      EXPECT_GE(w2, Rational(0));
    }
  }
}

TEST(Lemma9, HonestSplitPreservesUtility) {
  // Splitting at the honest allocation amounts changes nothing: the copies
  // together collect exactly U_v.
  util::Xoshiro256 rng(503);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const Graph ring = make_ring(graph::random_integer_weights(n, rng, 6));
    const bd::Decomposition decomposition(ring);
    for (graph::Vertex v = 0; v < n; ++v) {
      const auto [w1, w2] = honest_split_weights(ring, v);
      EXPECT_EQ(sybil_utility(ring, v, w1), decomposition.utility(v))
          << "trial " << trial << " vertex " << v;
    }
  }
}

TEST(SybilFamily, EndpointsMatchManualSplits) {
  const Graph ring = make_ring({Rational(4), Rational(1), Rational(2),
                                Rational(3)});
  const ParametrizedGraph family = sybil_family(ring, 0);
  const Graph at_zero = family.at(Rational(0));
  EXPECT_EQ(at_zero.weight(0), Rational(0));
  EXPECT_EQ(at_zero.weight(at_zero.vertex_count() - 1), Rational(4));
  const Graph at_two = family.at(Rational(2));
  EXPECT_EQ(at_two.weight(0), Rational(2));
  EXPECT_EQ(at_two.weight(at_two.vertex_count() - 1), Rational(2));
}

TEST(Optimizer, NeverWorseThanHonestSplit) {
  util::Xoshiro256 rng(509);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const Graph ring = make_ring(graph::random_integer_weights(n, rng, 5));
    const graph::Vertex v = static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const SybilOptimum optimum = optimize_sybil_split(ring, v);
    EXPECT_GE(optimum.ratio, Rational(1)) << "trial " << trial;
    EXPECT_EQ(optimum.utility, sybil_utility(ring, v, optimum.w1_star));
  }
}

TEST(Theorem8, RatioNeverExceedsTwoOnRandomRings) {
  // The headline result, verified exactly: no split the optimizer evaluates
  // may beat 2·U_v. (Every evaluation is exact rational arithmetic, so a
  // single counterexample would refute the theorem.)
  util::Xoshiro256 rng(521);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const Graph ring = make_ring(graph::random_integer_weights(n, rng, 8));
    const RingRatioResult result = ring_incentive_ratio(ring);
    EXPECT_LE(result.best_ratio, Rational(2))
        << "trial " << trial << " vertex " << result.best_vertex;
  }
}

TEST(Theorem8, RatioNeverExceedsTwoOnExtremeWeights) {
  // Adversarial weight scales (the near-tight family lives here).
  for (const std::int64_t heavy : {10, 100, 10000, 1000000}) {
    const Graph ring = make_ring(
        {Rational(heavy), Rational(1), Rational(1), Rational(1)});
    const RingRatioResult result = ring_incentive_ratio(ring);
    EXPECT_LE(result.best_ratio, Rational(2)) << "heavy = " << heavy;
  }
}

TEST(Theorem8, NearTightFamilyApproachesTwo) {
  // Regression for the E6 tightness witness: the measured ratio must fall
  // inside (2 − 2·(3/(2H+1)), 2] — i.e. genuinely close to 2 — and never
  // exceed 2.
  game::SybilOptions options;
  options.samples_per_piece = 32;
  options.refinement_rounds = 32;
  for (const std::int64_t h : {20, 100}) {
    const Graph ring = exp::near_tight_ring(Rational(h));
    const SybilOptimum optimum = optimize_sybil_split(ring, 0, options);
    EXPECT_LE(optimum.ratio, Rational(2)) << "H = " << h;
    const Rational slack = Rational(2) - optimum.ratio;
    EXPECT_LT(slack, Rational(6, 2 * h + 1)) << "H = " << h;
  }
}

TEST(Theorem8, GainRequiresNontrivialSplit) {
  // On the uniform ring nobody gains: ratio exactly 1.
  const Graph ring = make_ring(std::vector<Rational>(6, Rational(1)));
  const RingRatioResult result = ring_incentive_ratio(ring);
  EXPECT_EQ(result.best_ratio, Rational(1));
}

TEST(IncentiveRatio, CollectionAggregation) {
  std::vector<Graph> rings;
  rings.push_back(make_ring(std::vector<Rational>(4, Rational(1))));
  // An uneven odd ring: gains exist there (even rings with alternating
  // B/C structure are stable).
  rings.push_back(make_ring({Rational(4), Rational(10), Rational(1),
                             Rational(2), Rational(5)}));
  const CollectionRatioResult result = collection_incentive_ratio(rings);
  EXPECT_EQ(result.per_instance.size(), 2u);
  EXPECT_EQ(result.best_instance, 1u);
  EXPECT_GT(result.best_ratio, Rational(1));
  EXPECT_LE(result.best_ratio, Rational(2));
}

TEST(SybilEvaluator, MatchesFreeFunctions) {
  const Graph ring =
      make_ring({Rational(4), Rational(1), Rational(2), Rational(3)});
  const SybilEvaluator eval(ring, 0);
  EXPECT_EQ(eval.order().size(), 3u);
  const SybilSplit direct = split_ring(ring, 0, Rational(1), Rational(3));
  const SybilSplit via = eval.split(Rational(1), Rational(3));
  ASSERT_EQ(via.path.vertex_count(), direct.path.vertex_count());
  for (graph::Vertex v = 0; v < via.path.vertex_count(); ++v)
    EXPECT_EQ(via.path.weight(v), direct.path.weight(v));
  EXPECT_EQ(eval.utility(Rational(1)), sybil_utility(ring, 0, Rational(1)));
  EXPECT_THROW(
      SybilEvaluator(graph::make_path({Rational(1), Rational(1), Rational(1)}),
                     0),
      std::invalid_argument);
}

TEST(ExactSolver, DominatesLegacyScanEverywhere) {
  // The exact per-piece solver's candidate set provably contains a split at
  // least as good as every legacy scan sample — including near irrational
  // breakpoints, where the isolating-bracket endpoints out-resolve any
  // double-precision sample. Verified end to end: both engines' certified
  // optima compared exactly.
  const auto rings = exp::random_rings(6, 6, 1234, 10);
  const SybilOptions exact_opt;
  SybilOptions scan_opt;
  scan_opt.use_exact_piece_solver = false;
  int improvements = 0;
  for (const Graph& ring : rings) {
    for (graph::Vertex v = 0; v < ring.vertex_count(); ++v) {
      const SybilOptimum e = optimize_sybil_split(ring, v, exact_opt);
      const SybilOptimum s = optimize_sybil_split(ring, v, scan_opt);
      EXPECT_GE(e.utility, s.utility) << "vertex " << v;
      if (s.utility < e.utility) ++improvements;
    }
  }
  // The exact solver is not merely equal: on generic instances it lands
  // exactly on stationary points the scan only approximates.
  EXPECT_GT(improvements, 0);
}

TEST(ExactSolver, CrossCheckConfirmsPieceDominance) {
  // cross_check runs the legacy scan alongside the exact solver and throws
  // std::logic_error if any scan sample beats the exact per-piece optimum.
  SybilOptions options;
  options.cross_check = true;
  for (const Graph& ring : exp::random_rings(4, 6, 99, 9)) {
    for (graph::Vertex v = 0; v < ring.vertex_count(); ++v)
      EXPECT_NO_THROW((void)optimize_sybil_split(ring, v, options));
  }
  // Include the near-tight witness family, whose optimum hugs a breakpoint.
  const Graph tight = exp::near_tight_ring(Rational(25));
  EXPECT_NO_THROW((void)optimize_sybil_split(tight, 0, options));
}

TEST(SybilUtility, RejectsOutOfRangeSplits) {
  const Graph ring = make_ring({Rational(2), Rational(1), Rational(1)});
  EXPECT_THROW((void)sybil_utility(ring, 0, Rational(3)),
               std::invalid_argument);
  EXPECT_THROW((void)sybil_utility(ring, 0, Rational(-1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ringshare::game
