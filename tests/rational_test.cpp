// Unit tests for exact rational arithmetic.
#include "numeric/rational.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ringshare::num {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_TRUE(zero.is_integer());
}

TEST(Rational, NormalizesToLowestTermsPositiveDenominator) {
  EXPECT_EQ(Rational(2, 4).to_string(), "1/2");
  EXPECT_EQ(Rational(-2, 4).to_string(), "-1/2");
  EXPECT_EQ(Rational(2, -4).to_string(), "-1/2");
  EXPECT_EQ(Rational(-2, -4).to_string(), "1/2");
  EXPECT_EQ(Rational(0, -7).to_string(), "0");
  EXPECT_EQ(Rational(6, 3).to_string(), "2");
  EXPECT_FALSE(Rational(2, -4).denominator().is_negative());
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, FromStringFractionsAndIntegers) {
  EXPECT_EQ(Rational::from_string("3/9"), Rational(1, 3));
  EXPECT_EQ(Rational::from_string("-3/9"), Rational(-1, 3));
  EXPECT_EQ(Rational::from_string("42"), Rational(42));
}

TEST(Rational, ArithmeticExactness) {
  EXPECT_EQ(Rational(1, 3) + Rational(1, 6), Rational(1, 2));
  EXPECT_EQ(Rational(1, 3) - Rational(1, 2), Rational(-1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 9), Rational(3, 2));
  // The classic floating-point trap: 1/10 + 2/10 == 3/10 exactly.
  EXPECT_EQ(Rational(1, 10) + Rational(2, 10), Rational(3, 10));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Rational(1) / Rational(0)), std::domain_error);
  EXPECT_THROW((void)Rational(0).inverse(), std::domain_error);
}

TEST(Rational, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1, 2), Rational(1, 1000000));
  EXPECT_EQ(Rational(2, 6) <=> Rational(1, 3), std::strong_ordering::equal);
  EXPECT_GT(Rational(355, 113), Rational(314159, 100000));  // π approximants
}

TEST(Rational, InverseAndNegation) {
  EXPECT_EQ(Rational(3, 7).inverse(), Rational(7, 3));
  EXPECT_EQ(Rational(-3, 7).inverse(), Rational(-7, 3));
  EXPECT_EQ(-Rational(3, 7), Rational(-3, 7));
  EXPECT_EQ(Rational(3, 7).abs(), Rational(3, 7));
  EXPECT_EQ(Rational(-3, 7).abs(), Rational(3, 7));
}

TEST(Rational, MidpointMinMax) {
  EXPECT_EQ(Rational::midpoint(Rational(0), Rational(1)), Rational(1, 2));
  EXPECT_EQ(Rational::midpoint(Rational(1, 3), Rational(1, 2)),
            Rational(5, 12));
  EXPECT_EQ(Rational::min(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
  EXPECT_EQ(Rational::max(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-7, 4).to_double(), -1.75);
  EXPECT_NEAR(Rational(1, 3).to_double(), 1.0 / 3.0, 1e-15);
}

TEST(Rational, FromDoubleIsExactDyadic) {
  EXPECT_EQ(Rational::from_double(0.0), Rational(0));
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(-0.75), Rational(-3, 4));
  EXPECT_EQ(Rational::from_double(3.0), Rational(3));
  // 0.1 is NOT 1/10 in binary; the conversion must reproduce the exact
  // dyadic value of the double.
  const Rational tenth = Rational::from_double(0.1);
  EXPECT_NE(tenth, Rational(1, 10));
  EXPECT_DOUBLE_EQ(tenth.to_double(), 0.1);
  EXPECT_THROW((void)Rational::from_double(
                   std::numeric_limits<double>::infinity()),
               std::domain_error);
  EXPECT_THROW((void)Rational::from_double(
                   std::numeric_limits<double>::quiet_NaN()),
               std::domain_error);
}

TEST(Rational, FromDoubleRoundTripRandomized) {
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x = (rng.uniform01() - 0.5) * 1e6;
    EXPECT_DOUBLE_EQ(Rational::from_double(x).to_double(), x);
  }
}

TEST(Rational, FieldAxiomsRandomized) {
  util::Xoshiro256 rng(13);
  auto random_rational = [&]() {
    return Rational(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
  };
  for (int i = 0; i < 500; ++i) {
    const Rational a = random_rational();
    const Rational b = random_rational();
    const Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!a.is_zero()) EXPECT_EQ(a * a.inverse(), Rational(1));
  }
}

TEST(Rational, HashConsistentWithEquality) {
  EXPECT_EQ(Rational(1, 2).hash(), Rational(2, 4).hash());
  EXPECT_NE(Rational(1, 2).hash(), Rational(1, 3).hash());
}

TEST(Rational, SignQueries) {
  EXPECT_EQ(Rational(3, 4).sign(), 1);
  EXPECT_EQ(Rational(-3, 4).sign(), -1);
  EXPECT_EQ(Rational(0).sign(), 0);
  EXPECT_TRUE(Rational(-1, 5).is_negative());
  EXPECT_FALSE(Rational(1, 5).is_negative());
}

}  // namespace
}  // namespace ringshare::num
