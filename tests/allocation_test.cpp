// Tests for the BD Allocation Mechanism (Def. 5 / Prop. 6).
#include "bd/allocation.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::bd {
namespace {

using graph::Graph;
using graph::make_path;
using graph::make_ring;
using graph::make_star;

TEST(Allocation, AccessorsAndTransfers) {
  Allocation allocation(3);
  EXPECT_EQ(allocation.sent(0, 1), Rational(0));
  allocation.set_sent(0, 1, Rational(1, 2));
  allocation.set_sent(1, 0, Rational(1, 4));
  EXPECT_EQ(allocation.sent(0, 1), Rational(1, 2));
  EXPECT_EQ(allocation.utility(1), Rational(1, 2));
  EXPECT_EQ(allocation.utility(0), Rational(1, 4));
  EXPECT_EQ(allocation.sent_total(0), Rational(1, 2));
  EXPECT_EQ(allocation.transfers().size(), 2u);
  allocation.set_sent(0, 1, Rational(0));  // clearing removes the entry
  EXPECT_EQ(allocation.transfers().size(), 1u);
}

TEST(BdAllocation, SingleEdgeExchangesEverything) {
  const Decomposition decomposition(make_path({Rational(2), Rational(3)}));
  const Allocation allocation = bd_allocation(decomposition);
  // B = {1}, C = {0}, α = 2/3: agent 1 ships all of w₁ = 3; agent 0 returns
  // α·3 = 2 = w₀.
  EXPECT_EQ(allocation.sent(1, 0), Rational(3));
  EXPECT_EQ(allocation.sent(0, 1), Rational(2));
  EXPECT_TRUE(allocation_violations(decomposition, allocation).empty());
}

TEST(BdAllocation, Fig1ExampleSatisfiesProp6) {
  const Decomposition decomposition(graph::make_fig1_example());
  const Allocation allocation = bd_allocation(decomposition);
  const auto violations = allocation_violations(decomposition, allocation);
  EXPECT_TRUE(violations.empty()) << violations.front();
  // Cross-pair edges carry nothing (third bullet of Def. 5): v3-v4 is
  // between C_1 and B_2's unit pair.
  EXPECT_EQ(allocation.sent(2, 3), Rational(0));
  EXPECT_EQ(allocation.sent(3, 2), Rational(0));
}

TEST(BdAllocation, UnitAlphaPairDoubleCover) {
  // Uniform odd ring: single α = 1 pair; everyone ships and receives w_v.
  const Decomposition decomposition(
      make_ring(std::vector<Rational>(5, Rational(1))));
  const Allocation allocation = bd_allocation(decomposition);
  const auto violations = allocation_violations(decomposition, allocation);
  EXPECT_TRUE(violations.empty()) << violations.front();
  for (graph::Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(allocation.utility(v), Rational(1));
    EXPECT_EQ(allocation.sent_total(v), Rational(1));
  }
}

TEST(BdAllocation, StarAllocation) {
  const Graph g = make_star({Rational(1), Rational(2), Rational(3)});
  const Decomposition decomposition(g);
  const Allocation allocation = bd_allocation(decomposition);
  const auto violations = allocation_violations(decomposition, allocation);
  EXPECT_TRUE(violations.empty()) << violations.front();
  // Leaves form the bottleneck: B = {1,2}, C = {0}, α = 1/5.
  EXPECT_EQ(decomposition.alpha_of(0), Rational(1, 5));
  EXPECT_EQ(allocation.utility(0), Rational(5));
  EXPECT_EQ(allocation.utility(1), Rational(2, 5));
  EXPECT_EQ(allocation.utility(2), Rational(3, 5));
}

TEST(BdAllocation, TransfersOnlyWithinPairs) {
  util::Xoshiro256 rng(211);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = graph::make_random_connected(
        4 + static_cast<std::size_t>(rng.uniform_int(0, 5)), 0.4, rng, 6);
    const Decomposition decomposition(g);
    const Allocation allocation = bd_allocation(decomposition);
    for (const auto& [u, v, amount] : allocation.transfers()) {
      EXPECT_EQ(decomposition.pair_index(u), decomposition.pair_index(v))
          << "transfer crosses pairs in trial " << trial;
      EXPECT_GT(amount, Rational(0));
    }
  }
}

TEST(BdAllocation, RandomGraphsSatisfyAllAxioms) {
  util::Xoshiro256 rng(223);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = graph::make_random_connected(
        3 + static_cast<std::size_t>(rng.uniform_int(0, 7)), 0.4, rng, 9);
    const Decomposition decomposition(g);
    const Allocation allocation = bd_allocation(decomposition);
    const auto violations = allocation_violations(decomposition, allocation);
    EXPECT_TRUE(violations.empty())
        << "trial " << trial << ": " << violations.front();
  }
}

TEST(BdAllocation, RandomRingsSatisfyAllAxioms) {
  util::Xoshiro256 rng(227);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    const Graph g = make_ring(graph::random_integer_weights(n, rng, 7));
    const Decomposition decomposition(g);
    const Allocation allocation = bd_allocation(decomposition);
    const auto violations = allocation_violations(decomposition, allocation);
    EXPECT_TRUE(violations.empty())
        << "trial " << trial << ": " << violations.front();
  }
}

TEST(BdAllocation, UtilityConservation) {
  // Total received equals total shipped equals total weight (exchange
  // economy: resources are redistributed, never created).
  util::Xoshiro256 rng(229);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::make_random_connected(6, 0.5, rng, 5);
    const Decomposition decomposition(g);
    const Allocation allocation = bd_allocation(decomposition);
    Rational received(0);
    for (graph::Vertex v = 0; v < g.vertex_count(); ++v)
      received += allocation.utility(v);
    EXPECT_EQ(received, g.total_weight());
  }
}

TEST(BdAllocation, PathWithZeroLeaf) {
  // The Case C-2 shape: a zero-weight leaf exchanges nothing but the rest
  // of the path still clears.
  const Graph g = make_path({Rational(0), Rational(2), Rational(3)});
  const Decomposition decomposition(g);
  const Allocation allocation = bd_allocation(decomposition);
  const auto violations = allocation_violations(decomposition, allocation);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_EQ(allocation.utility(0), Rational(0));
  EXPECT_EQ(allocation.sent_total(0), Rational(0));
}

}  // namespace
}  // namespace ringshare::bd
