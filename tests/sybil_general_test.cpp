// Tests for Sybil attacks on general networks (the paper's closing
// conjecture: incentive ratio ≤ 2 beyond rings).
#include "game/sybil_general.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::game {
namespace {

using graph::make_complete;
using graph::make_ring;
using graph::make_star;

TEST(NeighborPartitions, CountsMatchBellNumbers) {
  // Partitions into >= 2 blocks of a d-set: Bell(d) − 1.
  const Graph k5 = make_complete(std::vector<Rational>(5, Rational(1)));
  // Vertex 0 has degree 4: B(4) − 1 = 15 − 1 = 14.
  EXPECT_EQ(neighbor_partitions(k5, 0).size(), 14u);
  const Graph ring = make_ring(std::vector<Rational>(4, Rational(1)));
  // Degree 2: B(2) − 1 = 1.
  EXPECT_EQ(neighbor_partitions(ring, 0).size(), 1u);
  const Graph star = make_star(std::vector<Rational>(3, Rational(1)));
  // Leaf has degree 1: no non-trivial partitions.
  EXPECT_TRUE(neighbor_partitions(star, 1).empty());
}

TEST(NeighborPartitions, BlocksCoverNeighborsExactly) {
  const Graph k4 = make_complete(std::vector<Rational>(4, Rational(1)));
  for (const auto& blocks : neighbor_partitions(k4, 0)) {
    std::vector<graph::Vertex> covered;
    for (const auto& block : blocks) {
      EXPECT_FALSE(block.empty());
      covered.insert(covered.end(), block.begin(), block.end());
    }
    std::sort(covered.begin(), covered.end());
    EXPECT_EQ(covered, (std::vector<graph::Vertex>{1, 2, 3}));
    EXPECT_GE(blocks.size(), 2u);
  }
}

TEST(ApplyAttack, RewiresNeighborsToCopies) {
  const Graph ring = make_ring({Rational(4), Rational(1), Rational(2),
                                Rational(3)});
  GeneralAttack attack;
  attack.blocks = {{1}, {3}};
  attack.weights = {Rational(1), Rational(3)};
  const AttackedGraph attacked = apply_attack(ring, 0, attack);
  EXPECT_EQ(attacked.graph.vertex_count(), 5u);
  EXPECT_EQ(attacked.copies.size(), 2u);
  EXPECT_TRUE(attacked.graph.has_edge(attacked.copies[0], 1));
  EXPECT_TRUE(attacked.graph.has_edge(attacked.copies[1], 3));
  EXPECT_FALSE(attacked.graph.has_edge(attacked.copies[0], 3));
  EXPECT_EQ(attacked.graph.weight(attacked.copies[0]), Rational(1));
  EXPECT_EQ(attacked.graph.weight(attacked.copies[1]), Rational(3));
}

TEST(ApplyAttack, ValidatesInput) {
  const Graph ring = make_ring({Rational(4), Rational(1), Rational(2),
                                Rational(3)});
  GeneralAttack bad_sum;
  bad_sum.blocks = {{1}, {3}};
  bad_sum.weights = {Rational(1), Rational(1)};
  EXPECT_THROW((void)apply_attack(ring, 0, bad_sum), std::invalid_argument);
  GeneralAttack bad_block;
  bad_block.blocks = {{1}, {2}};  // 2 is not a neighbor of 0
  bad_block.weights = {Rational(1), Rational(3)};
  EXPECT_THROW((void)apply_attack(ring, 0, bad_block), std::invalid_argument);
}

TEST(AttackUtility, MatchesRingSpecializedPath) {
  // On a ring, the (two-block) general attack coincides with the ring
  // split machinery.
  const Graph ring = make_ring({Rational(5), Rational(2), Rational(1),
                                Rational(4), Rational(3)});
  GeneralAttack attack;
  attack.blocks = {{1}, {4}};  // successor block / predecessor block
  attack.weights = {Rational(2), Rational(3)};
  EXPECT_EQ(attack_utility(ring, 0, attack),
            sybil_utility(ring, 0, Rational(2)));
}

TEST(GeneralSybil, ConjectureHoldsOnSmallGraphs) {
  // Exhaustive copy-partition + weight search on assorted small networks:
  // every exactly-evaluated attack must respect the conjectured bound 2.
  util::Xoshiro256 rng(601);
  std::vector<Graph> graphs;
  graphs.push_back(make_complete({Rational(1), Rational(3), Rational(2),
                                  Rational(5)}));
  graphs.push_back(make_star({Rational(2), Rational(1), Rational(4),
                              Rational(3)}));
  graphs.push_back(graph::make_fig1_example());
  for (int i = 0; i < 3; ++i)
    graphs.push_back(graph::make_random_connected(5, 0.5, rng, 5));

  GeneralSybilOptions options;
  options.grid = 8;
  options.refinement_rounds = 6;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.degree(v) < 2) continue;
      const GeneralSybilOptimum optimum =
          optimize_general_sybil(g, v, options);
      EXPECT_LE(optimum.ratio, Rational(2)) << "graph " << gi << " v" << v;
      // Unlike rings (Lemma 9), a forced neighbor partition on general
      // graphs can be strictly worse than honesty, so ratio < 1 is legal —
      // but it must stay positive and internally consistent.
      EXPECT_GT(optimum.ratio, Rational(0)) << "graph " << gi << " v" << v;
      EXPECT_EQ(optimum.utility, attack_utility(g, v, optimum.attack));
    }
  }
}

TEST(GeneralSybil, RejectsZeroWeightManipulator) {
  Graph g = make_ring({Rational(0), Rational(1), Rational(1), Rational(1)});
  EXPECT_THROW((void)optimize_general_sybil(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ringshare::game
