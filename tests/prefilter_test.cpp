// Differential verification of the Layer-7 candidate-evaluation
// accelerators: batched closed-form evaluation, the two-tier float
// prefilter, and cross-vertex partition-memo seeding. The contract for all
// three is the same — bit-identical optima with the layer on or off — so
// every test here compares full DeviationOptimum records field by field on
// exhaustive small necklaces, and the metamorphic tests additionally prove
// the layers actually engaged (the counters move) while staying inert (the
// results do not).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "exp/families.hpp"
#include "game/deviation.hpp"
#include "game/piece_solver.hpp"
#include "util/perf_counters.hpp"

namespace ringshare::game {
namespace {

/// Field-exact equality of two optima (Rational operator== is exact).
bool same_optimum(const DeviationOptimum& a, const DeviationOptimum& b) {
  return a.kind == b.kind && a.vertex == b.vertex && a.partner == b.partner &&
         a.t_star == b.t_star && a.utility == b.utility &&
         a.honest_utility == b.honest_utility && a.ratio == b.ratio;
}

/// Solve every task of every kind on `ring` under `options`.
std::vector<DeviationOptimum> run_all(const Graph& ring,
                                      const DeviationOptions& options) {
  DeviationSweep sweep;
  sweep.kinds = {DeviationKind::kSybil, DeviationKind::kMisreport,
                 DeviationKind::kCollusion};
  sweep.options = options;
  std::vector<DeviationOptimum> out;
  for (const DeviationTask& task : sweep.tasks(ring))
    out.push_back(sweep.run(ring, task));
  return out;
}

void expect_same_run(const std::vector<DeviationOptimum>& reference,
                     const std::vector<DeviationOptimum>& candidate,
                     const char* label) {
  ASSERT_EQ(reference.size(), candidate.size()) << label;
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_TRUE(same_optimum(reference[i], candidate[i]))
        << label << " task " << i << ": " << candidate[i].utility.to_string()
        << " at t = " << candidate[i].t_star.to_string() << " vs reference "
        << reference[i].utility.to_string() << " at t = "
        << reference[i].t_star.to_string();
}

DeviationOptions with_layers(bool batch, bool prefilter, bool memo) {
  DeviationOptions options;
  options.batch_candidate_eval = batch;
  options.float_prefilter = prefilter;
  options.partition_memo = memo;
  return options;
}

/// All accelerator subsets against the all-off legacy loop, on exhaustive
/// necklaces. The prefilter rides inside the batched path, so the
/// interesting axes are {batch+prefilter, batch only, memo on/off}.
void check_rings_bit_identical(const std::vector<Graph>& rings,
                               std::size_t stride) {
  for (std::size_t i = 0; i < rings.size(); i += stride) {
    const Graph& ring = rings[i];
    PartitionMemo::instance().clear();
    const std::vector<DeviationOptimum> reference =
        run_all(ring, with_layers(false, false, false));
    PartitionMemo::instance().clear();
    expect_same_run(reference, run_all(ring, with_layers(true, true, true)),
                    "batch+prefilter+memo");
    PartitionMemo::instance().clear();
    expect_same_run(reference, run_all(ring, with_layers(true, false, false)),
                    "batch only");
    PartitionMemo::instance().clear();
    expect_same_run(reference, run_all(ring, with_layers(true, true, false)),
                    "batch+prefilter");
  }
}

// Exhaustive n = 4 necklaces with weight numerators <= 3: every accelerator
// subset reproduces the legacy unbatched optima bit for bit.
TEST(PrefilterDifferential, ExhaustiveN4BitIdentical) {
  check_rings_bit_identical(exp::exhaustive_rings(4, 3), /*stride=*/1);
}

// Exhaustive n = 5 necklaces with weight numerators <= 2.
TEST(PrefilterDifferential, ExhaustiveN5BitIdentical) {
  check_rings_bit_identical(exp::exhaustive_rings(5, 2), /*stride=*/1);
}

// n = 6 necklaces with weight numerators <= 3, deterministically sampled to
// keep the all-off reference runs tractable.
TEST(PrefilterDifferential, SampledN6BitIdentical) {
  const std::vector<Graph> rings = exp::exhaustive_rings(6, 3);
  ASSERT_FALSE(rings.empty());
  check_rings_bit_identical(rings, /*stride=*/13);
}

// Metamorphic: turning the prefilter on moves ONLY the counters. On a
// workload large enough for float separation to fire, discards must be
// strictly positive with the filter on and exactly zero with it off, while
// the optima agree bit for bit.
TEST(PrefilterDifferential, CountersMoveResultsDoNot) {
  const std::vector<Graph> rings = exp::exhaustive_rings(6, 4);
  ASSERT_FALSE(rings.empty());
  std::vector<DeviationOptimum> on_results, off_results;
  std::uint64_t on_discards = 0, off_discards = 0;

  {
    PartitionMemo::instance().clear();
    const util::PerfSnapshot before = util::PerfCounters::snapshot();
    for (std::size_t i = 0; i < rings.size(); i += 29) {
      const std::vector<DeviationOptimum> run =
          run_all(rings[i], with_layers(true, true, true));
      on_results.insert(on_results.end(), run.begin(), run.end());
    }
    on_discards =
        util::PerfCounters::snapshot().prefilter_discards -
        before.prefilter_discards;
  }
  {
    PartitionMemo::instance().clear();
    const util::PerfSnapshot before = util::PerfCounters::snapshot();
    for (std::size_t i = 0; i < rings.size(); i += 29) {
      const std::vector<DeviationOptimum> run =
          run_all(rings[i], with_layers(true, false, true));
      off_results.insert(off_results.end(), run.begin(), run.end());
    }
    off_discards =
        util::PerfCounters::snapshot().prefilter_discards -
        before.prefilter_discards;
  }

  EXPECT_GT(on_discards, 0u);
  EXPECT_EQ(off_discards, 0u);
  expect_same_run(on_results, off_results, "prefilter on vs off");
}

// Seeded vs unseeded partition memo: solving a ring's tasks in sequence
// seeds later families from earlier siblings (partition_sig_hits moves);
// clearing the memo before every task removes every seed. Both schedules
// must emit bit-identical optima — seeds are split-point hints, never
// recorded output.
TEST(PrefilterDifferential, SeededVsUnseededMemoBitIdentical) {
  const std::vector<Graph> rings = exp::exhaustive_rings(6, 4);
  ASSERT_FALSE(rings.empty());
  const Graph& ring = rings[rings.size() / 2];

  DeviationSweep sweep;
  sweep.kinds = {DeviationKind::kSybil, DeviationKind::kMisreport,
                 DeviationKind::kCollusion};
  sweep.options = with_layers(true, true, true);
  const std::vector<DeviationTask> tasks = sweep.tasks(ring);

  PartitionMemo::instance().clear();
  const util::PerfSnapshot before = util::PerfCounters::snapshot();
  std::vector<DeviationOptimum> seeded;
  for (const DeviationTask& task : tasks) seeded.push_back(sweep.run(ring, task));
  const std::uint64_t seed_hits =
      util::PerfCounters::snapshot().partition_sig_hits -
      before.partition_sig_hits;

  std::vector<DeviationOptimum> unseeded;
  for (const DeviationTask& task : tasks) {
    PartitionMemo::instance().clear();
    unseeded.push_back(sweep.run(ring, task));
  }

  EXPECT_GT(seed_hits, 0u);
  expect_same_run(seeded, unseeded, "seeded vs unseeded memo");
}

}  // namespace
}  // namespace ringshare::game
