// The attacked network is itself a resource sharing system: every core
// invariant must hold on post-attack graphs too (split paths, multi-copy
// rewirings), and multi-copy attacks must be internally consistent.
#include <gtest/gtest.h>

#include "analysis/verify_all.hpp"
#include "bd/allocation.hpp"
#include "game/sybil_general.hpp"
#include "game/sybil_ring.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare {
namespace {

using game::Rational;
using graph::Graph;
using graph::make_complete;
using graph::make_ring;

TEST(AttackedGraphs, SplitPathsPassCoreVerification) {
  util::Xoshiro256 rng(2718);
  analysis::FullVerificationOptions options;
  options.misreport_checks = false;  // keep the sweep fast
  options.game_checks = false;       // paths are not rings
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const Graph ring = make_ring(graph::random_integer_weights(n, rng, 7));
    const Rational w1 =
        ring.weight(0) * Rational(rng.uniform_int(0, 8), 8);
    const game::SybilSplit split =
        game::split_ring(ring, 0, w1, ring.weight(0) - w1);
    const analysis::FullReport report =
        analysis::full_verification(split.path, options);
    EXPECT_TRUE(report.ok())
        << "trial " << trial << ": " << report.violations.front();
  }
}

TEST(AttackedGraphs, MultiCopyRewiringsPassCoreVerification) {
  const Graph k4 = make_complete({Rational(2), Rational(3), Rational(1),
                                  Rational(4)});
  analysis::FullVerificationOptions options;
  options.misreport_checks = false;
  options.game_checks = false;
  for (const auto& blocks : game::neighbor_partitions(k4, 0)) {
    // Spread the weight evenly over the copies.
    const auto m = static_cast<std::int64_t>(blocks.size());
    game::GeneralAttack attack;
    attack.blocks = blocks;
    for (std::int64_t i = 0; i < m; ++i)
      attack.weights.push_back(k4.weight(0) / Rational(m));
    const game::AttackedGraph attacked = game::apply_attack(k4, 0, attack);
    const analysis::FullReport report =
        analysis::full_verification(attacked.graph, options);
    EXPECT_TRUE(report.ok()) << report.violations.front();
  }
}

TEST(AttackedGraphs, ThreeWaySplitUtilityIsSumOfCopyUtilities) {
  const Graph k4 = make_complete({Rational(6), Rational(3), Rational(1),
                                  Rational(4)});
  game::GeneralAttack attack;
  attack.blocks = {{1}, {2}, {3}};
  attack.weights = {Rational(1), Rational(2), Rational(3)};
  const game::AttackedGraph attacked = game::apply_attack(k4, 0, attack);
  const bd::Decomposition decomposition(attacked.graph);
  Rational manual(0);
  for (const graph::Vertex copy : attacked.copies)
    manual += decomposition.utility(copy);
  EXPECT_EQ(game::attack_utility(k4, 0, attack), manual);
}

TEST(AttackedGraphs, CopyCountMatchesPartitionBlocks) {
  const Graph k4 = make_complete(std::vector<Rational>(4, Rational(2)));
  for (const auto& blocks : game::neighbor_partitions(k4, 0)) {
    game::GeneralAttack attack;
    attack.blocks = blocks;
    const auto m = static_cast<std::int64_t>(blocks.size());
    for (std::int64_t i = 0; i < m; ++i)
      attack.weights.push_back(Rational(2) / Rational(m));
    const game::AttackedGraph attacked = game::apply_attack(k4, 0, attack);
    EXPECT_EQ(attacked.copies.size(), blocks.size());
    // Every copy has exactly its block's edges.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(attacked.graph.degree(attacked.copies[i]), blocks[i].size());
    }
  }
}

TEST(AttackedGraphs, ZeroWeightCopiesAreHarmless) {
  // Degenerate splits (one copy carries everything) still decompose and
  // allocate cleanly — the Case C-2 shape generalized.
  const Graph ring = make_ring({Rational(4), Rational(1), Rational(3),
                                Rational(2), Rational(5)});
  const game::SybilSplit split =
      game::split_ring(ring, 2, Rational(0), ring.weight(2));
  const bd::Decomposition decomposition(split.path);
  const bd::Allocation allocation = bd::bd_allocation(decomposition);
  EXPECT_TRUE(
      bd::allocation_violations(decomposition, allocation).empty());
  EXPECT_EQ(decomposition.utility(split.v1), Rational(0));
}

}  // namespace
}  // namespace ringshare
