// Tests for the stage decomposition (Lemmas 16/18/19/22/24 and Theorem 8's
// per-stage accounting) on concrete and random rings.
#include "analysis/stages.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::analysis {
namespace {

using graph::make_ring;

game::SybilOptions fast_options() {
  game::SybilOptions options;
  options.samples_per_piece = 24;
  options.refinement_rounds = 20;
  return options;
}

TEST(Stages, HonestAnchorsAtRingUtility) {
  const graph::Graph g = make_ring({Rational(4), Rational(1), Rational(3),
                                    Rational(2), Rational(5)});
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    const StageReport report = analyze_stages(g, v, fast_options());
    EXPECT_EQ(report.honest.total(), report.honest_ring_utility)
        << "vertex " << v;
  }
}

TEST(Stages, DeltasSumToTotalGain) {
  util::Xoshiro256 rng(801);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 6));
    const graph::Vertex v =
        static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const StageReport report = analyze_stages(g, v, fast_options());
    const Rational gain = report.optimal.total() - report.honest.total();
    EXPECT_EQ(report.delta1_stage1 + report.delta2_stage1 +
                  report.delta1_stage2 + report.delta2_stage2,
              gain)
        << "trial " << trial;
  }
}

TEST(Stages, LemmaInequalitiesOnRandomRings) {
  util::Xoshiro256 rng(809);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 6));
    const graph::Vertex v =
        static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const StageReport report = analyze_stages(g, v, fast_options());
    EXPECT_TRUE(report.violations.empty())
        << "trial " << trial << " v" << v << ": "
        << report.violations.front();
  }
}

TEST(Stages, Theorem8BoundHoldsOnOddRings) {
  // Odd rings are where gains happen; verify the exact 2-bound per stage
  // decomposition there.
  util::Xoshiro256 rng(811);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = trial % 2 == 0 ? 5 : 7;
    const graph::Graph g =
        make_ring(graph::random_integer_weights(n, rng, 10));
    const graph::Vertex v =
        static_cast<graph::Vertex>(rng.uniform_int(0, n - 1));
    const StageReport report = analyze_stages(g, v, fast_options());
    EXPECT_LE(report.optimal.total(),
              Rational(2) * report.honest_ring_utility)
        << "trial " << trial;
    EXPECT_TRUE(report.violations.empty())
        << "trial " << trial << ": " << report.violations.front();
  }
}

TEST(Stages, ExplicitTargetSplit) {
  const graph::Graph g = make_ring({Rational(6), Rational(1), Rational(2),
                                    Rational(3), Rational(1)});
  // Push everything to one copy.
  const StageReport report = analyze_stages_to(g, 0, Rational(6));
  EXPECT_EQ(report.optimal.w1 + report.optimal.w2, Rational(6));
  EXPECT_LE(report.optimal.total(), Rational(2) * report.honest_ring_utility);
  EXPECT_TRUE(report.violations.empty()) << report.violations.front();
}

TEST(Stages, UniformRingNoGain) {
  const graph::Graph g = make_ring(std::vector<Rational>(5, Rational(1)));
  const StageReport report = analyze_stages(g, 0, fast_options());
  EXPECT_EQ(report.optimal.total(), report.honest_ring_utility);
  EXPECT_TRUE(report.violations.empty()) << report.violations.front();
}

}  // namespace
}  // namespace ringshare::analysis
