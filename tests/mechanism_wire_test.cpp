// Regression tests for the mechanism-tagged checkpoint grammar: tagged task
// keys round-trip through the wire layer, untagged keys (every pre-zoo
// checkpoint and request) still parse as BD, unknown tags are rejected, BD
// records stay byte-identical to the historical format, and the sweep
// driver resumes mechanism-tagged checkpoints correctly — folding only its
// own mechanism's lines, tolerating corrupt lines, and letting one file
// host a sweep per mechanism.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/wire.hpp"
#include "exp/families.hpp"
#include "exp/sweep_driver.hpp"
#include "graph/builders.hpp"

namespace ringshare::engine {
namespace {

using game::DeviationKind;
using game::DeviationTask;
using game::MechanismId;

/// Self-deleting temp path so resume tests start from a clean file.
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

DeviationTask make_task(DeviationKind kind, graph::Vertex v,
                        graph::Vertex partner, MechanismId mechanism) {
  DeviationTask task;
  task.kind = kind;
  task.vertex = v;
  task.partner = partner;
  task.mechanism = mechanism;
  return task;
}

TEST(MechanismWire, TaggedKeysRoundTripForEveryMechanismAndKind) {
  const DeviationKind kinds[] = {DeviationKind::kSybil,
                                 DeviationKind::kMisreport,
                                 DeviationKind::kCollusion};
  for (MechanismId id = 0; id < game::mechanism_count(); ++id) {
    for (const DeviationKind kind : kinds) {
      const DeviationTask task = make_task(kind, 3, 4, id);
      const std::string key = format_task_key(7, task);
      if (id == game::kBdMechanismId) {
        EXPECT_EQ(key.find('@'), std::string::npos) << key;
      } else {
        const std::string suffix =
            "@" + std::string(game::mechanism(id).tag());
        ASSERT_GE(key.size(), suffix.size());
        EXPECT_EQ(key.substr(key.size() - suffix.size()), suffix);
      }
      const std::optional<TaskKeyParts> parsed = parse_task_key(key);
      ASSERT_TRUE(parsed.has_value()) << key;
      EXPECT_EQ(parsed->instance, 7u);
      EXPECT_EQ(parsed->task.kind, kind);
      EXPECT_EQ(parsed->task.vertex, 3u);
      if (kind == DeviationKind::kCollusion)
        EXPECT_EQ(parsed->task.partner, 4u);
      EXPECT_EQ(parsed->task.mechanism, id);
    }
  }
}

// Backward compatibility pinned: the untagged keys every pre-zoo checkpoint
// file contains parse as BD, byte for byte.
TEST(MechanismWire, UntaggedKeysParseAsBd) {
  for (const char* key : {"i0.v1", "i3.m2", "i9.c4-5", "i12.v0"}) {
    const std::optional<TaskKeyParts> parsed = parse_task_key(key);
    ASSERT_TRUE(parsed.has_value()) << key;
    EXPECT_EQ(parsed->task.mechanism, game::kBdMechanismId) << key;
  }
  // And BD formatting never emits a tag, so new BD checkpoints stay
  // readable by pre-zoo builds.
  const DeviationTask task =
      make_task(DeviationKind::kSybil, 1, 0, game::kBdMechanismId);
  EXPECT_EQ(format_task_key(0, task), "i0.v1");
}

TEST(MechanismWire, UnknownOrEmptyTagsAreRejected) {
  EXPECT_FALSE(parse_task_key("i0.v1@no_such_mechanism").has_value());
  EXPECT_FALSE(parse_task_key("i0.v1@").has_value());
  EXPECT_FALSE(parse_task_key("i0.c1-2@bogus").has_value());
  // A tagged but otherwise malformed key is still malformed.
  EXPECT_FALSE(parse_task_key("i0.z1@prop").has_value());
}

// Result records carry a "mechanism" field for comparators only; BD lines
// are byte-identical to the historical format.
TEST(MechanismWire, RecordFieldsTagComparatorsOnly) {
  game::DeviationOptimum optimum;
  optimum.kind = DeviationKind::kMisreport;
  optimum.vertex = 2;
  optimum.ratio = num::Rational(1);
  optimum.t_star = num::Rational(3);
  optimum.utility = num::Rational(3, 2);
  optimum.honest_utility = num::Rational(3, 2);

  const std::string bd_line = format_record_fields(0, optimum);
  EXPECT_EQ(bd_line.find("mechanism"), std::string::npos);
  EXPECT_NE(bd_line.find("\"task\": \"i0.m2\""), std::string::npos);

  optimum.mechanism = *game::mechanism_from_tag("prop");
  const std::string prop_line = format_record_fields(0, optimum);
  EXPECT_NE(prop_line.find("\"mechanism\": \"prop\""), std::string::npos);
  EXPECT_NE(prop_line.find("\"task\": \"i0.m2@prop\""), std::string::npos);
  EXPECT_EQ(json_string_field(prop_line, "mechanism"), "prop");
}

// The sweep driver's resume fold is mechanism-scoped: a checkpoint file
// hosting BD and prop sweeps resumes each without touching the other, old
// untagged lines resume as BD, corrupt lines stay tolerated, and a
// resumed sweep reports the same aggregate as an uninterrupted one.
TEST(MechanismWire, SweepResumeIsMechanismScoped) {
  const std::vector<graph::Graph> rings = {
      graph::make_ring({num::Rational(4), num::Rational(1), num::Rational(3),
                        num::Rational(2)})};
  TempPath path("mechanism_sweep_resume.jsonl");

  exp::SweepDriverOptions bd_options;
  bd_options.kinds = {DeviationKind::kSybil, DeviationKind::kMisreport,
                      DeviationKind::kCollusion};
  bd_options.output_path = path.str();
  const exp::SweepDriverReport bd_first =
      exp::run_sweep_driver(rings, bd_options);
  EXPECT_EQ(bd_first.tasks_skipped, 0u);
  EXPECT_GT(bd_first.tasks_run, 0u);

  // A prop sweep over the same file skips nothing (the BD lines are
  // untagged, hence not prop's)...
  exp::SweepDriverOptions prop_options = bd_options;
  prop_options.mechanism = *game::mechanism_from_tag("prop");
  const exp::SweepDriverReport prop_first =
      exp::run_sweep_driver(rings, prop_options);
  EXPECT_EQ(prop_first.tasks_skipped, 0u);
  EXPECT_EQ(prop_first.tasks_run, bd_first.tasks_run);

  // ...and a re-run of either sweep now resumes fully from the mixed file,
  // reproducing its own aggregate bit-identically.
  const exp::SweepDriverReport bd_again =
      exp::run_sweep_driver(rings, bd_options);
  EXPECT_EQ(bd_again.tasks_run, 0u);
  EXPECT_EQ(bd_again.tasks_skipped, bd_first.tasks_total);
  EXPECT_EQ(bd_again.max_ratio, bd_first.max_ratio);
  EXPECT_EQ(bd_again.argmax_kind, bd_first.argmax_kind);

  const exp::SweepDriverReport prop_again =
      exp::run_sweep_driver(rings, prop_options);
  EXPECT_EQ(prop_again.tasks_run, 0u);
  EXPECT_EQ(prop_again.tasks_skipped, prop_first.tasks_total);
  EXPECT_EQ(prop_again.max_ratio, prop_first.max_ratio);

  // Corrupt-line tolerance is preserved under the extended grammar: a
  // truncated line and a line with an unknown mechanism tag are both
  // skipped (and their tasks re-run), never fatal.
  {
    std::ofstream append(path.str(), std::ios::app);
    append << "{\"task\": \"i0.v1@no_such_mech\", \"ratio\": \"2\"}\n";
    append << "{\"task\": \"i0.m" << '\n';
  }
  const exp::SweepDriverReport bd_tolerant =
      exp::run_sweep_driver(rings, bd_options);
  EXPECT_EQ(bd_tolerant.corrupt_lines_skipped, 2u);
  EXPECT_EQ(bd_tolerant.tasks_run, 0u);
  EXPECT_EQ(bd_tolerant.max_ratio, bd_first.max_ratio);
}

// Checkpoint records written by a comparator sweep parse back with the
// right mechanism, and SweepTaskRecord::key reflects the tag.
TEST(MechanismWire, ComparatorCheckpointLinesRoundTrip) {
  const std::vector<graph::Graph> rings = {exp::uniform_ring(5)};
  TempPath path("mechanism_sweep_tagged_lines.jsonl");

  exp::SweepDriverOptions options;
  options.kinds = {DeviationKind::kMisreport};
  options.mechanism = *game::mechanism_from_tag("karma");
  options.output_path = path.str();
  const exp::SweepDriverReport report = exp::run_sweep_driver(rings, options);
  EXPECT_EQ(report.tasks_run, 5u);
  // Misreport monotonicity holds for karma, so the folded max ratio is 1.
  EXPECT_EQ(report.max_ratio, num::Rational(1));

  std::ifstream in(path.str());
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const std::optional<std::string> key = json_string_field(line, "task");
    ASSERT_TRUE(key.has_value()) << line;
    EXPECT_NE(key->find("@karma"), std::string::npos) << line;
    const std::optional<TaskKeyParts> parsed = parse_task_key(*key);
    ASSERT_TRUE(parsed.has_value()) << *key;
    EXPECT_EQ(parsed->task.mechanism, options.mechanism);
    EXPECT_EQ(json_string_field(line, "mechanism"), "karma");
  }
  EXPECT_EQ(lines, 5u);
}

}  // namespace
}  // namespace ringshare::engine
