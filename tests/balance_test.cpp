// Tests for the minimum-norm flow canonicalization and the
// proportional-response fixed-point property it buys.
#include "bd/balance.hpp"

#include <gtest/gtest.h>

#include "bd/allocation.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::bd {
namespace {

using graph::make_complete;
using graph::make_ring;
using num::Rational;

TEST(BalanceFlow, NoopOnForests) {
  // Bipartite path support: unique feasible flow, nothing to move.
  std::vector<FlowEdge> edges = {{0, 2, Rational(3)}, {1, 2, Rational(1)}};
  const auto before = edges;
  balance_flow(edges, 3);
  for (std::size_t i = 0; i < edges.size(); ++i)
    EXPECT_EQ(edges[i].flow, before[i].flow);
}

TEST(BalanceFlow, EqualizesAroundACycle) {
  // 4-cycle 0-2, 2-1, 1-3, 3-0 with a skewed circulation: min-norm makes
  // the alternating values equal.
  std::vector<FlowEdge> edges = {{0, 2, Rational(5)},
                                 {1, 2, Rational(0)},
                                 {1, 3, Rational(5)},
                                 {0, 3, Rational(0)}};
  balance_flow(edges, 4);
  for (const FlowEdge& edge : edges) {
    EXPECT_EQ(edge.flow, Rational(5, 2));
  }
}

TEST(BalanceFlow, PreservesNodeTotals) {
  util::Xoshiro256 rng(641);
  for (int trial = 0; trial < 40; ++trial) {
    // Random bipartite flow with left {0..2}, right {3..5}.
    std::vector<FlowEdge> edges;
    for (std::size_t u = 0; u < 3; ++u) {
      for (std::size_t v = 3; v < 6; ++v) {
        if (rng.uniform01() < 0.7) {
          edges.push_back(FlowEdge{u, v, Rational(rng.uniform_int(0, 9))});
        }
      }
    }
    std::vector<Rational> before(6, Rational(0));
    for (const auto& edge : edges) {
      before[edge.from] += edge.flow;
      before[edge.to] += edge.flow;
    }
    balance_flow(edges, 6);
    std::vector<Rational> after(6, Rational(0));
    for (const auto& edge : edges) {
      EXPECT_GE(edge.flow, Rational(0)) << "trial " << trial;
      after[edge.from] += edge.flow;
      after[edge.to] += edge.flow;
    }
    EXPECT_EQ(before, after) << "trial " << trial;
  }
}

TEST(BalanceFlow, NeverIncreasesNorm) {
  util::Xoshiro256 rng(643);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<FlowEdge> edges;
    for (std::size_t u = 0; u < 4; ++u) {
      for (std::size_t v = 4; v < 8; ++v) {
        if (rng.uniform01() < 0.6) {
          edges.push_back(FlowEdge{u, v, Rational(rng.uniform_int(0, 9))});
        }
      }
    }
    Rational norm_before(0);
    for (const auto& edge : edges) norm_before += edge.flow * edge.flow;
    balance_flow(edges, 8);
    Rational norm_after(0);
    for (const auto& edge : edges) norm_after += edge.flow * edge.flow;
    EXPECT_LE(norm_after, norm_before) << "trial " << trial;
  }
}

TEST(BalanceFlow, Idempotent) {
  std::vector<FlowEdge> edges = {{0, 2, Rational(5)},
                                 {1, 2, Rational(0)},
                                 {1, 3, Rational(5)},
                                 {0, 3, Rational(0)}};
  balance_flow(edges, 4);
  const auto once = edges;
  balance_flow(edges, 4);
  for (std::size_t i = 0; i < edges.size(); ++i)
    EXPECT_EQ(edges[i].flow, once[i].flow);
}

TEST(BalanceFlow, RespectsNonNegativity) {
  // Cycle where the unconstrained optimum would drive an edge negative:
  // flows (4, 1, 0, 3): alternating sum 4 − 1 + 0 − 3 = 0 → already
  // balanced... use (4, 0, 4, 0) instead: optimum shift −2 hits the bound
  // exactly. Try a case clamping strictly: (6, 1, 0, 1): sum s = 6−1+0−1=4
  // → t* = −1; edge 3 (flow 1, minus sign) allows t ≤ 1; plus-edges need
  // t ≥ −0 → t clamped to 0? No: plus edges are indices 0,2 (flows 6,0):
  // t ≥ 0 − ... t ≥ −0 → t ∈ [0 − min(6,0) ... ] lower = −0, upper = 1.
  // t* = −1 clamps to lower = 0 → nothing moves (edge 2 already at 0).
  std::vector<FlowEdge> edges = {{0, 2, Rational(6)},
                                 {1, 2, Rational(1)},
                                 {1, 3, Rational(0)},
                                 {0, 3, Rational(1)}};
  balance_flow(edges, 4);
  for (const auto& edge : edges) EXPECT_GE(edge.flow, Rational(0));
  // Node totals preserved, and the zero edge pinned the redistribution.
  EXPECT_EQ(edges[0].flow + edges[3].flow, Rational(7));
}

TEST(FixedPoint, BalancedAllocationIsPrFixedPoint) {
  util::Xoshiro256 rng(647);
  for (int trial = 0; trial < 40; ++trial) {
    const graph::Graph g =
        trial % 2 == 0
            ? make_ring(graph::random_integer_weights(
                  3 + static_cast<std::size_t>(rng.uniform_int(0, 6)), rng, 7))
            : graph::make_random_connected(
                  4 + static_cast<std::size_t>(rng.uniform_int(0, 4)), 0.45,
                  rng, 7);
    const Decomposition decomposition(g);
    const Allocation allocation = bd_allocation(decomposition);
    const auto violations = fixed_point_violations(decomposition, allocation);
    EXPECT_TRUE(violations.empty())
        << "trial " << trial << ": " << violations.front();
  }
}

TEST(FixedPoint, ExtremePointFlowCanViolate) {
  // The uniform triangle: Dinic's raw flow is a directed 3-cycle, which is
  // NOT a proportional-response fixed point; the balanced flow is.
  const graph::Graph g = make_ring(std::vector<Rational>(3, Rational(1)));
  const Decomposition decomposition(g);
  const Allocation raw =
      bd_allocation(decomposition, BalancePolicy::kExtremePoint);
  const Allocation balanced = bd_allocation(decomposition);
  EXPECT_FALSE(fixed_point_violations(decomposition, raw).empty());
  EXPECT_TRUE(fixed_point_violations(decomposition, balanced).empty());
  // Balanced = symmetric half-half exchange.
  EXPECT_EQ(balanced.sent(0, 1), Rational(1, 2));
  EXPECT_EQ(balanced.sent(1, 0), Rational(1, 2));
}

TEST(FixedPoint, ExtremePointStillSatisfiesDef5Axioms) {
  // Both policies produce valid Def-5 allocations; only the fixed-point /
  // Lemma-9 layer distinguishes them.
  util::Xoshiro256 rng(653);
  for (int trial = 0; trial < 20; ++trial) {
    const graph::Graph g = make_ring(graph::random_integer_weights(
        3 + static_cast<std::size_t>(rng.uniform_int(0, 5)), rng, 6));
    const Decomposition decomposition(g);
    const Allocation raw =
        bd_allocation(decomposition, BalancePolicy::kExtremePoint);
    const auto violations = allocation_violations(decomposition, raw);
    EXPECT_TRUE(violations.empty())
        << "trial " << trial << ": " << violations.front();
  }
}

}  // namespace
}  // namespace ringshare::bd
