// Differential tests for the Graph-free signature oracle on ring-union
// families (ParametrizedGraph::signature). The oracle's contract is
// bit-identity with decompose(t).signature() on every eligible family and a
// counted fallback to the full decomposition everywhere else; the
// cross_check_signature_oracle config arms a lockstep comparison that turns
// any disagreement into a throw.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "bd/memo.hpp"
#include "exp/families.hpp"
#include "game/breakpoints.hpp"
#include "game/deviation.hpp"
#include "graph/builders.hpp"
#include "util/perf_counters.hpp"

namespace ringshare::game {
namespace {

using bd::hot_path_config;
using bd::HotPathConfig;
using graph::make_star;

class ConfigGuard {
 public:
  ConfigGuard() : saved_(hot_path_config()) {}
  ~ConfigGuard() { hot_path_config() = saved_; }

 private:
  HotPathConfig saved_;
};

/// Sample parameters of a family: endpoints, simple interior points, and a
/// tall-denominator interior point (the oracle must not care about height).
std::vector<Rational> sample_points(const ParametrizedGraph& family) {
  const Rational& lo = family.t_lo();
  const Rational& hi = family.t_hi();
  const Rational span = hi - lo;
  return {lo,
          hi,
          lo + span / Rational(2),
          lo + span / Rational(3),
          lo + span * Rational(7, 9),
          lo + span * Rational(123456789, 987654321)};
}

/// signature() with the oracle on must equal both the oracle-off signature()
/// and the raw decomposition signature, at every sample of every family of
/// the ring.
void check_ring_families(const Graph& ring) {
  std::vector<ParametrizedGraph> families;
  for (Vertex v = 0; v < ring.vertex_count(); ++v)
    families.push_back(misreport_family(ring, v));
  families.push_back(collusion_family(ring, 0, 1));
  for (const ParametrizedGraph& family : families) {
    for (const Rational& t : sample_points(family)) {
      hot_path_config().signature_oracle = true;
      const Signature with_oracle = family.signature(t);
      hot_path_config().signature_oracle = false;
      const Signature without = family.signature(t);
      EXPECT_EQ(with_oracle, without) << "t = " << t.to_string();
      EXPECT_EQ(with_oracle, family.decompose(t).signature())
          << "t = " << t.to_string();
    }
  }
}

// Exhaustive n = 4 necklaces, all misreport + collusion families, sampled
// across each parameter range.
TEST(SignatureOracle, ExhaustiveN4BitIdentical) {
  ConfigGuard guard;
  for (const Graph& ring : exp::exhaustive_rings(4, 3)) check_ring_families(ring);
}

// Exhaustive n = 5 and sampled n = 6 necklaces.
TEST(SignatureOracle, ExhaustiveN5AndSampledN6BitIdentical) {
  ConfigGuard guard;
  for (const Graph& ring : exp::exhaustive_rings(5, 2)) check_ring_families(ring);
  const std::vector<Graph> rings = exp::exhaustive_rings(6, 3);
  ASSERT_FALSE(rings.empty());
  for (std::size_t i = 0; i < rings.size(); i += 31) check_ring_families(rings[i]);
}

// Eligible families are served by the oracle (hits move, fallbacks do not).
TEST(SignatureOracle, CountsHitsOnRingFamilies) {
  ConfigGuard guard;
  hot_path_config().signature_oracle = true;
  const ParametrizedGraph family = misreport_family(exp::uniform_ring(6), 2);
  const util::PerfSnapshot before = util::PerfCounters::snapshot();
  for (const Rational& t : sample_points(family)) (void)family.signature(t);
  const util::PerfSnapshot after = util::PerfCounters::snapshot();
  EXPECT_GT(after.sig_oracle_hits, before.sig_oracle_hits);
  EXPECT_EQ(after.sig_oracle_fallbacks, before.sig_oracle_fallbacks);
}

// A star family (center degree >= 3) is ineligible: every signature() call
// falls back to the full decomposition, counted, with correct output.
TEST(SignatureOracle, StarFamilyFallsBack) {
  ConfigGuard guard;
  hot_path_config().signature_oracle = true;
  const Graph star = make_star({Rational(3), Rational(1), Rational(2),
                                Rational(1), Rational(2)});
  const ParametrizedGraph family = misreport_family(star, 0);
  const util::PerfSnapshot before = util::PerfCounters::snapshot();
  for (const Rational& t : sample_points(family)) {
    const Signature sig = family.signature(t);
    EXPECT_EQ(sig, family.decompose(t).signature()) << "t = " << t.to_string();
  }
  const util::PerfSnapshot after = util::PerfCounters::snapshot();
  EXPECT_EQ(after.sig_oracle_hits, before.sig_oracle_hits);
  EXPECT_GT(after.sig_oracle_fallbacks, before.sig_oracle_fallbacks);
}

// Out-of-range parameters bypass the oracle and surface decompose()'s
// canonical error, oracle on or off.
TEST(SignatureOracle, OutOfRangeThrowsEitherWay) {
  ConfigGuard guard;
  const ParametrizedGraph family = misreport_family(exp::uniform_ring(5), 0);
  hot_path_config().signature_oracle = true;
  EXPECT_THROW((void)family.signature(Rational(-1)), std::out_of_range);
  hot_path_config().signature_oracle = false;
  EXPECT_THROW((void)family.signature(Rational(-1)), std::out_of_range);
}

// The lockstep cross-check stays silent through a full accelerated
// deviation sweep — the strongest end-to-end differential: every oracle
// answer on every probe the real engine issues is compared against the full
// decomposition in situ.
TEST(SignatureOracle, CrossCheckSweepStaysSilent) {
  ConfigGuard guard;
  hot_path_config().signature_oracle = true;
  hot_path_config().cross_check_signature_oracle = true;
  DeviationSweep sweep;
  sweep.kinds = {DeviationKind::kSybil, DeviationKind::kMisreport,
                 DeviationKind::kCollusion};
  const util::PerfSnapshot before = util::PerfCounters::snapshot();
  for (const Graph& ring : exp::random_rings(3, 6, 4242, 16)) {
    for (const DeviationTask& task : sweep.tasks(ring))
      EXPECT_NO_THROW((void)sweep.run(ring, task));
  }
  EXPECT_GT(util::PerfCounters::snapshot().sig_oracle_hits,
            before.sig_oracle_hits);
}

}  // namespace
}  // namespace ringshare::game
