// Tests for the combinatorial path/cycle cut kernel: differential against a
// brute-force subset oracle, bit-identity of full bottleneck solves with the
// kernel on vs off, and the cross_check_kernel harness that runs the Dinic
// oracle in lockstep.
#include "bd/ring_kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bd/decomposition.hpp"
#include "bd/memo.hpp"
#include "graph/builders.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace ringshare::bd {
namespace {

using graph::make_path;
using graph::make_ring;
using graph::make_star;

class ConfigGuard {
 public:
  ConfigGuard() : saved_(hot_path_config()) {}
  ~ConfigGuard() { hot_path_config() = saved_; }

 private:
  HotPathConfig saved_;
};

/// Brute-force oracle over all subsets: the union of every minimizer of
/// f(S) = w(Γ(S)) − λ·w(S), i.e. the lattice-maximal minimizer.
std::vector<Vertex> brute_maximal_minimizer(const Graph& g,
                                            const Rational& lambda) {
  const std::size_t n = g.vertex_count();
  Rational best;
  std::vector<char> in_union(n, 0);
  bool have_best = false;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<Vertex> set;
    for (std::size_t v = 0; v < n; ++v)
      if ((mask >> v) & 1u) set.push_back(static_cast<Vertex>(v));
    const Rational value =
        g.set_weight(g.neighborhood(set)) - lambda * g.set_weight(set);
    if (!have_best || value < best) {
      best = value;
      have_best = true;
      std::fill(in_union.begin(), in_union.end(), 0);
      for (const Vertex v : set) in_union[v] = 1;
    } else if (value == best) {
      for (const Vertex v : set) in_union[v] = 1;
    }
  }
  std::vector<Vertex> out;
  for (std::size_t v = 0; v < n; ++v)
    if (in_union[v]) out.push_back(static_cast<Vertex>(v));
  return out;
}

/// A random union of paths, cycles, and isolated vertices on <= 10 vertices.
Graph random_ring_union(util::Xoshiro256& rng) {
  Graph g(static_cast<std::size_t>(rng.uniform_int(1, 10)));
  const std::size_t n = g.vertex_count();
  for (Vertex v = 0; v < n; ++v)
    g.set_weight(v, Rational(rng.uniform_int(1, 5)));
  std::size_t next = 0;
  while (next < n) {
    const std::size_t remaining = n - next;
    const std::size_t len = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(remaining)));
    for (std::size_t i = 1; i < len; ++i)
      g.add_edge(static_cast<Vertex>(next + i - 1),
                 static_cast<Vertex>(next + i));
    if (len >= 3 && rng.uniform01() < 0.5)
      g.add_edge(static_cast<Vertex>(next + len - 1),
                 static_cast<Vertex>(next));
    next += len;
  }
  return g;
}

TEST(RingKernel, AnalyzeRejectsBranching) {
  util::Xoshiro256 rng(88);
  const Graph star = make_star(graph::random_integer_weights(5, rng, 9));
  EXPECT_FALSE(analyze_ring_structure(star).has_value());
}

TEST(RingKernel, MatchesBruteForceOracle) {
  util::Xoshiro256 rng(717);
  for (int trial = 0; trial < 300; ++trial) {
    const Graph g = random_ring_union(rng);
    const auto structure = analyze_ring_structure(g);
    ASSERT_TRUE(structure.has_value());
    // λ = 0, a random fraction, and an attained single-vertex ratio — the
    // last lands on tie boundaries where minimizers are non-unique.
    std::vector<Rational> lambdas = {
        Rational(0), Rational(rng.uniform_int(1, 12), rng.uniform_int(1, 5))};
    const Vertex pick = static_cast<Vertex>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.vertex_count()) - 1));
    lambdas.push_back(g.set_weight(g.neighbors(pick)) / g.weight(pick));
    for (const Rational& lambda : lambdas) {
      EXPECT_EQ(kernel_maximal_minimizer(g, *structure, lambda),
                brute_maximal_minimizer(g, lambda))
          << "trial " << trial << " lambda " << lambda.to_string();
    }
  }
}

TEST(RingKernel, SingleVertexAndTinyPaths) {
  Graph isolated(1);
  isolated.set_weight(0, Rational(4));
  const auto structure = analyze_ring_structure(isolated);
  ASSERT_TRUE(structure.has_value());
  // λ > 0 includes the vertex (−λw < 0); at λ = 0 the vertex still joins
  // the maximal minimizer because Γ({v}) = ∅ ties the empty set's value.
  EXPECT_EQ(kernel_maximal_minimizer(isolated, *structure, Rational(1)),
            (std::vector<Vertex>{0}));
  EXPECT_EQ(kernel_maximal_minimizer(isolated, *structure, Rational(0)),
            brute_maximal_minimizer(isolated, Rational(0)));

  const Graph pair = make_path({Rational(2), Rational(3)});
  const auto pair_structure = analyze_ring_structure(pair);
  ASSERT_TRUE(pair_structure.has_value());
  for (const Rational& lambda :
       {Rational(0), Rational(1, 2), Rational(1), Rational(3, 2)}) {
    EXPECT_EQ(kernel_maximal_minimizer(pair, *pair_structure, lambda),
              brute_maximal_minimizer(pair, lambda));
  }
}

TEST(RingKernel, BottleneckBitIdenticalKernelOnVsOff) {
  ConfigGuard guard;
  util::Xoshiro256 rng(929);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_ring_union(rng);

    hot_path_config() = HotPathConfig{};
    hot_path_config().memo_cache = false;
    hot_path_config().ring_kernel = true;
    const BottleneckResult with_kernel = maximal_bottleneck(g);

    hot_path_config().ring_kernel = false;
    const BottleneckResult with_flow = maximal_bottleneck(g);

    EXPECT_EQ(with_kernel.alpha, with_flow.alpha) << "trial " << trial;
    EXPECT_EQ(with_kernel.bottleneck, with_flow.bottleneck);
    EXPECT_EQ(with_kernel.dinkelbach_iterations,
              with_flow.dinkelbach_iterations);
  }
}

TEST(RingKernel, CrossCheckHarnessAgreesOnRandomInstances) {
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  hot_path_config().memo_cache = false;
  hot_path_config().cross_check_kernel = true;

  util::PerfCounters::reset();
  util::Xoshiro256 rng(1041);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_ring_union(rng);
    EXPECT_NO_THROW((void)maximal_bottleneck(g)) << "trial " << trial;
  }
  const util::PerfSnapshot snapshot = util::PerfCounters::snapshot();
  EXPECT_GT(snapshot.ring_kernel_cross_checks, 0u);
  EXPECT_EQ(snapshot.ring_kernel_cross_checks, snapshot.ring_kernel_evals);
}

TEST(RingKernel, DecompositionUsesKernelOnRings) {
  ConfigGuard guard;
  hot_path_config() = HotPathConfig{};
  BottleneckCache::instance().clear();
  DecompositionCache::instance().clear();
  util::PerfCounters::reset();
  util::Xoshiro256 rng(77);
  const Graph g = make_ring(graph::random_integer_weights(9, rng, 30));
  const Decomposition decomposition(g);
  EXPECT_TRUE(proposition3_violations(g, decomposition).empty());
  const util::PerfSnapshot snapshot = util::PerfCounters::snapshot();
  EXPECT_GT(snapshot.ring_kernel_evals, 0u);
  EXPECT_EQ(snapshot.ring_kernel_cross_checks, 0u);
}

}  // namespace
}  // namespace ringshare::bd
