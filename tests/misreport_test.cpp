// Tests for the misreporting model (Section III-B): Theorem 10 monotone
// utility, α_v(x) behaviour, and the structure partition on concrete
// instances.
#include "game/misreport.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "util/rng.hpp"

namespace ringshare::game {
namespace {

using graph::make_path;
using graph::make_ring;
using graph::make_star;

TEST(Misreport, UtilityAtTruthEqualsBdUtility) {
  const Graph g = make_ring({Rational(2), Rational(3), Rational(5),
                             Rational(1)});
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const MisreportAnalysis analysis(g, v);
    EXPECT_EQ(analysis.utility_at(g.weight(v)), Decomposition(g).utility(v));
  }
}

TEST(Misreport, ZeroReportZeroUtility) {
  const Graph g = make_ring({Rational(2), Rational(3), Rational(5),
                             Rational(1)});
  const MisreportAnalysis analysis(g, 1);
  EXPECT_EQ(analysis.utility_at(Rational(0)), Rational(0));
}

TEST(Misreport, UtilityMonotoneOnGrid) {
  // Theorem 10 on a dense exact grid, several instances.
  util::Xoshiro256 rng(401);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const Graph g = make_ring(graph::random_integer_weights(n, rng, 6));
    const Vertex v = static_cast<Vertex>(rng.uniform_int(0, n - 1));
    const MisreportAnalysis analysis(g, v);
    Rational previous(-1);
    for (int i = 0; i <= 24; ++i) {
      const Rational x = g.weight(v) * Rational(i, 24);
      const Rational utility = analysis.utility_at(x);
      EXPECT_LE(previous, utility)
          << "trial " << trial << " x=" << x.to_string();
      previous = utility;
    }
  }
}

TEST(Misreport, TruthIsDominantUnderMisreporting) {
  // [6]/[7]: the mechanism is truthful for weight misreporting — reporting
  // the full endowment maximizes utility over all x in [0, w_v].
  util::Xoshiro256 rng(409);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const Graph g = make_ring(graph::random_integer_weights(n, rng, 6));
    const Vertex v = static_cast<Vertex>(rng.uniform_int(0, n - 1));
    const MisreportAnalysis analysis(g, v);
    const Rational truthful = analysis.utility_at(g.weight(v));
    for (int i = 0; i <= 16; ++i) {
      const Rational x = g.weight(v) * Rational(i, 16);
      EXPECT_LE(analysis.utility_at(x), truthful) << "trial " << trial;
    }
  }
}

TEST(Misreport, AlphaAndClassOnStar) {
  // Star hub with heavy leaves: hub is C class for its whole report range.
  const Graph g = make_star({Rational(2), Rational(5), Rational(5)});
  const MisreportAnalysis analysis(g, 0);
  for (int i = 1; i <= 8; ++i) {
    const Rational x = Rational(2) * Rational(i, 8);
    EXPECT_EQ(analysis.class_at(x), bd::VertexClass::kC) << i;
    // α_v(x) = x / 10 — non-decreasing in x.
    EXPECT_EQ(analysis.alpha_at(x), x / Rational(10));
  }
}

TEST(Misreport, PartitionCoversRange) {
  const Graph g = make_ring({Rational(4), Rational(1), Rational(3),
                             Rational(2), Rational(5)});
  const MisreportAnalysis analysis(g, 0);
  const StructurePartition& partition = analysis.partition();
  EXPECT_EQ(partition.t_lo, Rational(0));
  EXPECT_EQ(partition.t_hi, Rational(4));
  EXPECT_EQ(partition.piece_count(), partition.breakpoints.size() + 1);
  // Breakpoints sorted and interior.
  for (std::size_t i = 0; i < partition.breakpoints.size(); ++i) {
    EXPECT_GT(partition.breakpoints[i].value, Rational(0));
    EXPECT_LT(partition.breakpoints[i].value, Rational(4));
    if (i > 0) {
      EXPECT_LT(partition.breakpoints[i - 1].value,
                partition.breakpoints[i].value);
    }
  }
}

TEST(Misreport, BreakpointsAreExactOnMisreportFamilies) {
  // Single-vertex misreporting only produces linear crossings: every
  // breakpoint must be snapped exactly.
  util::Xoshiro256 rng(419);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const Graph g = make_ring(graph::random_integer_weights(n, rng, 5));
    const Vertex v = static_cast<Vertex>(rng.uniform_int(0, n - 1));
    const MisreportAnalysis analysis(g, v);
    for (const auto& bp : analysis.partition().breakpoints) {
      EXPECT_TRUE(bp.exact)
          << "trial " << trial << " inexact breakpoint at "
          << bp.value.to_double();
    }
  }
}

TEST(Misreport, PiecewiseAlphaMatchesDecomposition) {
  // The closed-form per-piece α must agree with a fresh decomposition at
  // interior points of every piece.
  util::Xoshiro256 rng(421);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const Graph g = make_ring(graph::random_integer_weights(n, rng, 6));
    const Vertex v = static_cast<Vertex>(rng.uniform_int(0, n - 1));
    const MisreportAnalysis analysis(g, v);
    const auto alphas = analysis.piecewise_alpha();
    const auto& partition = analysis.partition();
    ASSERT_EQ(alphas.size(), partition.piece_count());
    for (std::size_t piece = 0; piece < alphas.size(); ++piece) {
      const Rational mid = partition.piece_midpoint(piece);
      if (mid.is_zero()) continue;  // degenerate zero-report corner
      EXPECT_EQ(alphas[piece].at(mid), analysis.alpha_at(mid))
          << "trial " << trial << " piece " << piece;
    }
  }
}

TEST(Misreport, PiecewiseAlphaIsLinearFractionalInOneSideOnly) {
  // Under single-vertex misreporting, x appears in the numerator (C class)
  // or denominator (B class) of v's pair — never both.
  const Graph g = make_ring({Rational(4), Rational(1), Rational(3),
                             Rational(2), Rational(5)});
  const MisreportAnalysis analysis(g, 0);
  for (const auto& alpha : analysis.piecewise_alpha()) {
    EXPECT_TRUE(alpha.num_s.is_zero() || alpha.den_s.is_zero());
    EXPECT_FALSE(!alpha.num_s.is_zero() && !alpha.den_s.is_zero());
  }
}

TEST(Misreport, UtilityContinuousAtBreakpoints) {
  // Theorem 10 continuity: left/right limits at each exact breakpoint match
  // the value at the breakpoint (evaluated via tiny exact offsets).
  const Graph g = make_ring({Rational(6), Rational(1), Rational(2),
                             Rational(3), Rational(1)});
  const MisreportAnalysis analysis(g, 0);
  const Rational epsilon(1, 1000000000);
  for (const auto& bp : analysis.partition().breakpoints) {
    if (!bp.exact) continue;
    const Rational at = analysis.utility_at(bp.value);
    if (bp.value - epsilon > Rational(0)) {
      const Rational below = analysis.utility_at(bp.value - epsilon);
      EXPECT_LT((at - below).abs(), Rational(1, 1000))
          << "jump below breakpoint " << bp.value.to_double();
    }
    if (bp.value + epsilon < Rational(6)) {
      const Rational above = analysis.utility_at(bp.value + epsilon);
      EXPECT_LT((above - at).abs(), Rational(1, 1000))
          << "jump above breakpoint " << bp.value.to_double();
    }
  }
}

}  // namespace
}  // namespace ringshare::game
