// bench_delta — before/after bench for the delta-update decomposition
// engine (bd/delta.hpp) against cold full recomputation.
//
// Workload: epoch-streaming drift, the regime the delta engine is built
// for. One n-vertex random integer ring drifts for `kEpochs` epochs; each
// epoch applies one additive integer weight edit (±kDriftStep, floored at
// 1). The identical edit sequence is replayed through three passes:
//
//   * cold  — after every edit, a from-scratch Decomposition(g) with the
//     library-default accelerators: the per-edit cost when nothing carries
//     over between epochs;
//   * delta — the same edits through engine::StreamSession (DeltaSolver):
//     stage-state reuse, warm-started Dinkelbach through the kernel F/G
//     row patch, and the certified tail splice;
//   * armed — a shorter replay with HotPathConfig::cross_check_delta on,
//     so EVERY update is shadowed by a full recompute that throws on any
//     stage disagreement.
//
// Contracts (any violation exits nonzero):
//   * per-epoch decompositions of the delta pass are bit-identical to the
//     cold pass (pair sets and α values, every epoch);
//   * delta speedup >= 5x over cold (summed per-epoch solve time; the
//     signature rendering for the identity check is excluded on BOTH sides);
//   * the splice/patch machinery actually engaged (hits > 0, spliced > 0);
//   * the armed pass reports zero cross-check violations.
//
// Total times, per-epoch latency quantiles (p50/p95/p99) for both passes,
// reuse counts and the delta pass's perf counters are written to
// BENCH_delta.json at the repository root.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bd/decomposition.hpp"
#include "bd/delta.hpp"
#include "bd/memo.hpp"
#include "engine/stream_session.hpp"
#include "game/piece_solver.hpp"
#include "graph/builders.hpp"
#include "numeric/bigint.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace {

using namespace ringshare;
using num::BigInt;
using num::Rational;

#ifndef RINGSHARE_REPO_ROOT
#define RINGSHARE_REPO_ROOT "."
#endif

constexpr std::size_t kRingSize = 512;
constexpr std::size_t kEpochs = 160;
constexpr std::size_t kArmedEpochs = 48;
constexpr std::int64_t kMaxWeight = 64;
constexpr std::int64_t kDriftStep = 1;
constexpr std::uint64_t kSeed = 0xE90C5ULL;
constexpr double kSpeedupFloor = 5.0;
constexpr int kReps = 3;  ///< per pass, best-of (scheduler-noise shield)

/// Library-default accelerators, cold shared caches, zeroed counters — the
/// same starting line for every pass.
void configure() {
  BigInt::set_fast_path_enabled(true);
  bd::hot_path_config() = bd::HotPathConfig{};
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();
  game::PartitionMemo::instance().clear();
  util::PerfCounters::reset();
}

struct Edit {
  graph::Vertex vertex = 0;
  Rational weight;
};

struct Workload {
  graph::Graph initial{0};
  std::vector<Edit> edits;  ///< one per epoch, precomputed drift
};

/// The drift trajectory is precomputed on a plain weight array so every
/// pass replays the exact same edit sequence.
Workload build_workload() {
  util::Xoshiro256 rng(kSeed);
  std::vector<Rational> weights(kRingSize);
  for (Rational& w : weights) w = Rational(rng.uniform_int(1, kMaxWeight));
  Workload workload;
  workload.initial = graph::make_ring(weights);
  workload.edits.reserve(kEpochs);
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    const auto v = static_cast<graph::Vertex>(
        rng.uniform_int(0, static_cast<std::int64_t>(kRingSize) - 1));
    std::int64_t step = rng.uniform_int(-kDriftStep, kDriftStep);
    if (step == 0) step = 1;
    Rational next = weights[v] + Rational(step);
    if (next < Rational(1)) next = Rational(1);
    weights[v] = next;
    workload.edits.push_back(Edit{v, std::move(next)});
  }
  return workload;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Full structural rendering: pair sets and α values — bit-identity means
/// equal strings.
std::string signature(const bd::Decomposition& decomposition) {
  return decomposition.to_string();
}

struct ColdRun {
  double seconds = 0;  ///< summed solve time (signatures excluded)
  std::vector<std::string> signatures;  ///< per epoch
  util::LatencyHistogram latency;
};

// Both passes time ONLY the solve (edit → up-to-date decomposition); the
// per-epoch signature rendering used for the bit-identity contract is the
// same cost on both sides and is excluded symmetrically. Each pass replays
// the workload kReps times and keeps its fastest rep — the work is fully
// deterministic, so reps differ only by scheduler noise and the minimum is
// the honest estimate of the pass's cost.
ColdRun run_cold(const Workload& workload) {
  ColdRun best;
  for (int rep = 0; rep < kReps; ++rep) {
    configure();
    ColdRun run;
    run.signatures.reserve(workload.edits.size());
    graph::Graph g = workload.initial;
    std::uint64_t solve_ns = 0;
    for (const Edit& edit : workload.edits) {
      g.set_weight(edit.vertex, edit.weight);
      const std::uint64_t begin = now_ns();
      const bd::Decomposition decomposition(g);
      const std::uint64_t elapsed = now_ns() - begin;
      solve_ns += elapsed;
      run.latency.record_ns(elapsed);
      run.signatures.push_back(signature(decomposition));
    }
    run.seconds = 1e-9 * static_cast<double>(solve_ns);
    if (rep == 0 || run.seconds < best.seconds) best = std::move(run);
  }
  return best;
}

struct DeltaRun {
  double seconds = 0;  ///< summed solve time (signatures excluded)
  std::vector<std::string> signatures;  ///< per epoch
  engine::StreamStats stats;
  util::PerfSnapshot counters;
};

DeltaRun run_delta(const Workload& workload) {
  DeltaRun best;
  for (int rep = 0; rep < kReps; ++rep) {
    configure();
    DeltaRun run;
    run.signatures.reserve(workload.edits.size());
    engine::StreamSession session(workload.initial);
    std::uint64_t solve_ns = 0;
    for (const Edit& edit : workload.edits) {
      const std::uint64_t begin = now_ns();
      session.update(edit.vertex, edit.weight);
      solve_ns += now_ns() - begin;
      run.signatures.push_back(signature(session.decomposition()));
    }
    run.seconds = 1e-9 * static_cast<double>(solve_ns);
    run.stats = session.stats();
    run.counters = util::PerfCounters::snapshot();
    if (rep == 0 || run.seconds < best.seconds) best = std::move(run);
  }
  return best;
}

/// Cross-check pass: every update shadowed by a full recompute that throws
/// on any stage disagreement. Returns the violation count (target: zero).
std::uint64_t run_armed(const Workload& workload) {
  configure();
  bd::hot_path_config().cross_check_delta = true;
  std::uint64_t violations = 0;
  bd::DeltaSolver solver(workload.initial);
  for (std::size_t epoch = 0; epoch < kArmedEpochs; ++epoch) {
    const Edit& edit = workload.edits[epoch];
    try {
      solver.update_weight(edit.vertex, edit.weight);
    } catch (const std::logic_error& e) {
      ++violations;
      std::printf("CROSS-CHECK VIOLATION at epoch %zu: %s\n", epoch, e.what());
      // Resync so later epochs stay meaningful.
      solver = bd::DeltaSolver(solver.graph());
    }
  }
  bd::hot_path_config().cross_check_delta = false;
  return violations;
}

const char* bool_json(bool value) { return value ? "true" : "false"; }

}  // namespace

int main() {
  const Workload workload = build_workload();
  std::printf("[delta] workload: %zu-ring, %zu drift epochs (seed %llu)\n",
              kRingSize, kEpochs,
              static_cast<unsigned long long>(kSeed));

  std::printf("[delta] cold full-recompute baseline...\n");
  const ColdRun cold = run_cold(workload);
  std::printf("[delta] cold %.3fs (%.1f ms/epoch)\n", cold.seconds,
              1e3 * cold.seconds / kEpochs);

  std::printf("[delta] delta engine (StreamSession)...\n");
  const DeltaRun delta = run_delta(workload);
  const double speedup = cold.seconds / delta.seconds;
  std::printf("[delta] delta %.3fs (%.2f ms/epoch), speedup %.2fx\n",
              delta.seconds, 1e3 * delta.seconds / kEpochs, speedup);
  std::printf(
      "[delta] hits %llu, fallbacks %llu; stages resolved %llu, spliced "
      "%llu, patched %llu\n",
      static_cast<unsigned long long>(delta.stats.hits),
      static_cast<unsigned long long>(delta.stats.fallbacks),
      static_cast<unsigned long long>(delta.stats.resolved_stages),
      static_cast<unsigned long long>(delta.stats.spliced_stages),
      static_cast<unsigned long long>(delta.stats.patched_stages));
  std::printf("[delta] epoch latency p50 %.3fms p95 %.3fms p99 %.3fms "
              "(cold p50 %.3fms)\n",
              delta.stats.update_latency.p50_ms(),
              delta.stats.update_latency.p95_ms(),
              delta.stats.update_latency.p99_ms(), cold.latency.p50_ms());

  const bool results_identical = delta.signatures == cold.signatures;
  std::printf("[delta] %s\n", results_identical
                                  ? "results identical (all epochs)"
                                  : "RESULTS DIFFER");

  std::printf("[delta] cross-check pass (delta vs full, armed, %zu epochs)"
              "...\n", kArmedEpochs);
  const std::uint64_t violations = run_armed(workload);
  std::printf("[delta] cross-check: %llu violations\n",
              static_cast<unsigned long long>(violations));

  const std::string json_path =
      std::string(RINGSHARE_REPO_ROOT) + "/BENCH_delta.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"delta\",\n"
        << "  \"workload\": {\"n\": " << kRingSize
        << ", \"epochs\": " << kEpochs << ", \"drift_step\": " << kDriftStep
        << ", \"max_weight\": " << kMaxWeight << ", \"reps\": " << kReps
        << "},\n"
        << "  \"cold_seconds\": " << cold.seconds << ",\n"
        << "  \"delta_seconds\": " << delta.seconds << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"speedup_floor\": " << kSpeedupFloor << ",\n"
        << "  \"results_identical\": " << bool_json(results_identical) << ",\n"
        << "  \"delta\": {\"updates\": " << delta.stats.updates
        << ", \"hits\": " << delta.stats.hits
        << ", \"fallbacks\": " << delta.stats.fallbacks
        << ", \"resolved_stages\": " << delta.stats.resolved_stages
        << ", \"spliced_stages\": " << delta.stats.spliced_stages
        << ", \"patched_stages\": " << delta.stats.patched_stages << "},\n"
        << "  \"delta_latency_ms\": {\"p50\": "
        << delta.stats.update_latency.p50_ms()
        << ", \"p95\": " << delta.stats.update_latency.p95_ms()
        << ", \"p99\": " << delta.stats.update_latency.p99_ms() << "},\n"
        << "  \"cold_latency_ms\": {\"p50\": " << cold.latency.p50_ms()
        << ", \"p95\": " << cold.latency.p95_ms()
        << ", \"p99\": " << cold.latency.p99_ms() << "},\n"
        << "  \"cross_check\": {\"epochs\": " << kArmedEpochs
        << ", \"violations\": " << violations << "},\n"
        << "  \"delta_counters\": " << delta.counters.to_json(2) << "\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  int exit_code = 0;
  if (!results_identical) {
    std::printf("FAIL: delta decompositions differ from cold recompute\n");
    exit_code = 1;
  }
  if (speedup < kSpeedupFloor) {
    std::printf("FAIL: delta speedup %.2fx below the %.0fx floor\n", speedup,
                kSpeedupFloor);
    exit_code = 1;
  }
  if (delta.stats.hits == 0 || delta.stats.spliced_stages == 0) {
    std::printf("FAIL: delta reuse machinery never engaged\n");
    exit_code = 1;
  }
  if (violations != 0) {
    std::printf("FAIL: %llu cross-check violations\n",
                static_cast<unsigned long long>(violations));
    exit_code = 1;
  }
  configure();
  return exit_code;
}
