// E14 — the truthfulness baselines the paper builds on ([6]/[7]):
// the BD mechanism admits NO profitable deviation in either the weight
// dimension (misreporting w_v) or the connection dimension (hiding
// incident edges). Only the Sybil dimension (E5/E6) is profitable — which
// is exactly the paper's motivation for studying it.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "exp/families.hpp"
#include "game/edge_manipulation.hpp"
#include "game/misreport.hpp"
#include "game/sybil_ring.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using game::Rational;

void print_truthfulness_report() {
  std::printf("=== E14: truthfulness baselines vs the Sybil dimension ===\n\n");

  std::vector<graph::Graph> rings = exp::random_rings(8, 5, 999, 9);
  {
    auto more = exp::random_rings(5, 7, 998, 9);
    rings.insert(rings.end(), more.begin(), more.end());
  }
  rings.push_back(graph::make_ring({Rational(7), Rational(6), Rational(22),
                                    Rational(5), Rational(48), Rational(9),
                                    Rational(2)}));

  int agents = 0;
  int misreport_gains = 0;
  int edge_hiding_gains = 0;
  int sybil_gains = 0;
  Rational best_sybil(1);

  game::SybilOptions options;
  options.samples_per_piece = 16;
  options.refinement_rounds = 16;

  for (const graph::Graph& ring : rings) {
    const bd::Decomposition decomposition(ring);
    for (graph::Vertex v = 0; v < ring.vertex_count(); ++v) {
      ++agents;
      const Rational honest = decomposition.utility(v);
      // Weight dimension: grid of exact misreports.
      const game::MisreportAnalysis analysis(ring, v);
      for (int i = 0; i <= 12; ++i) {
        if (honest < analysis.utility_at(ring.weight(v) * Rational(i, 12))) {
          ++misreport_gains;
          break;
        }
      }
      // Connection dimension: exhaustive edge hiding.
      if (honest < game::optimize_edge_hiding(ring, v).best_utility)
        ++edge_hiding_gains;
      // Sybil dimension.
      const Rational ratio = game::optimize_sybil_split(ring, v, options).ratio;
      if (Rational(1) < ratio) ++sybil_gains;
      if (best_sybil < ratio) best_sybil = ratio;
    }
  }

  util::Table table({"deviation dimension", "agents with strict gain",
                     "max gain factor"});
  table.add_row({"weight misreporting ([7]: truthful)",
                 std::to_string(misreport_gains) + " / " +
                     std::to_string(agents),
                 "1.0 (exact)"});
  table.add_row({"edge hiding ([6]/[7]: truthful)",
                 std::to_string(edge_hiding_gains) + " / " +
                     std::to_string(agents),
                 "1.0 (exact)"});
  table.add_row({"Sybil split (this paper: ratio 2, tight)",
                 std::to_string(sybil_gains) + " / " + std::to_string(agents),
                 util::format_double(best_sybil.to_double(), 6)});
  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check: zero gains in the truthful dimensions, strict "
              "gains only via Sybil identities — the paper's motivation.\n\n");
}

void BM_EdgeHidingScan(benchmark::State& state) {
  const auto rings =
      exp::random_rings(1, static_cast<std::size_t>(state.range(0)), 999, 9);
  for (auto _ : state) {
    const auto result = game::optimize_edge_hiding(rings[0], 0);
    benchmark::DoNotOptimize(result.best_utility);
  }
}
BENCHMARK(BM_EdgeHidingScan)->Arg(5)->Arg(9)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_truthfulness_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
