// E1 — Fig. 1: the paper's worked bottleneck-decomposition example.
//
// Regenerates the figure's data: the 6-vertex graph, its two bottleneck
// pairs (B1,C1) = ({v1,v2},{v3}) with α = 1/3 and (B2,C2) with α = 1, the
// class of every vertex, and the resulting allocation — plus a
// google-benchmark timing of the decomposition itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bd/allocation.hpp"
#include "graph/builders.hpp"
#include "graph/dot.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;

void print_fig1_report() {
  const graph::Graph g = graph::make_fig1_example();
  const bd::Decomposition decomposition(g);

  std::printf("=== E1: Fig. 1 bottleneck decomposition ===\n");
  std::printf("%s", decomposition.to_string().c_str());
  std::printf("expected (paper): (B1,C1)=({v1,v2},{v3}) alpha=1/3; "
              "(B2,C2)=({v4,v5,v6},{v4,v5,v6}) alpha=1\n\n");

  util::Table table({"vertex", "w", "class", "alpha", "U (Prop 6)"});
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    table.add_row({"v" + std::to_string(v + 1), g.weight(v).to_string(),
                   bd::to_string(decomposition.vertex_class(v)),
                   decomposition.alpha_of(v).to_string(),
                   decomposition.utility(v).to_string()});
  }
  std::printf("%s\n", table.to_text().c_str());

  const auto violations =
      bd::proposition3_violations(g, decomposition);
  std::printf("Proposition 3 invariants: %s\n\n",
              violations.empty() ? "all hold" : violations.front().c_str());

  std::vector<std::string> labels;
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    labels.push_back(bd::to_string(decomposition.vertex_class(v)) + " pair " +
                     std::to_string(decomposition.pair_index(v) + 1));
  }
  std::printf("DOT rendering:\n%s\n", graph::to_dot(g, labels).c_str());
}

void BM_Fig1Decomposition(benchmark::State& state) {
  const graph::Graph g = graph::make_fig1_example();
  for (auto _ : state) {
    bd::Decomposition decomposition(g);
    benchmark::DoNotOptimize(decomposition.pair_count());
  }
}
BENCHMARK(BM_Fig1Decomposition);

void BM_Fig1Allocation(benchmark::State& state) {
  const graph::Graph g = graph::make_fig1_example();
  const bd::Decomposition decomposition(g);
  for (auto _ : state) {
    const bd::Allocation allocation = bd::bd_allocation(decomposition);
    benchmark::DoNotOptimize(allocation.vertex_count());
  }
}
BENCHMARK(BM_Fig1Allocation);

}  // namespace

int main(int argc, char** argv) {
  print_fig1_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
