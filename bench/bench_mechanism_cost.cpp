// E12 — mechanism cost ablation: what the exactness and the solver
// structure cost.
//
// Microbenchmarks of the building blocks across instance sizes:
// decomposition (exact rational Dinkelbach) vs the brute-force oracle,
// allocation, max-flow with Rational vs double capacities, and the
// Dinkelbach iteration count (the design claim: a handful of exact
// min-cuts suffice).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bd/allocation.hpp"
#include "bd/brute.hpp"
#include "exp/families.hpp"
#include "flow/dinic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using num::Rational;

void print_cost_report() {
  std::printf("=== E12: mechanism cost ablation ===\n\n");
  util::Table table({"n", "pairs", "Dinkelbach iterations", "bits of alpha"});
  for (const std::size_t n : {5u, 9u, 17u, 33u, 65u}) {
    util::Xoshiro256 rng(n);
    const graph::Graph ring =
        graph::make_ring(graph::random_integer_weights(n, rng, 50));
    const bd::Decomposition decomposition(ring);
    std::size_t bits = 0;
    for (const auto& pair : decomposition.pairs()) {
      bits = std::max(bits, pair.alpha.numerator().bit_count() +
                                pair.alpha.denominator().bit_count());
    }
    table.add_row({std::to_string(n),
                   std::to_string(decomposition.pair_count()),
                   std::to_string(decomposition.total_dinkelbach_iterations()),
                   std::to_string(bits)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check: Dinkelbach converges in O(pairs) exact min-cuts; "
              "alpha stays a small fraction.\n\n");
}

graph::Graph sized_ring(std::int64_t n) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(n));
  return graph::make_ring(
      graph::random_integer_weights(static_cast<std::size_t>(n), rng, 50));
}

void BM_DecompositionExact(benchmark::State& state) {
  const graph::Graph ring = sized_ring(state.range(0));
  for (auto _ : state) {
    bd::Decomposition decomposition(ring);
    benchmark::DoNotOptimize(decomposition.pair_count());
  }
}
BENCHMARK(BM_DecompositionExact)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_DecompositionBruteForce(benchmark::State& state) {
  const graph::Graph ring = sized_ring(state.range(0));
  for (auto _ : state) {
    const auto pairs = bd::brute_force_decomposition(ring);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_DecompositionBruteForce)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_Allocation(benchmark::State& state) {
  const graph::Graph ring = sized_ring(state.range(0));
  const bd::Decomposition decomposition(ring);
  for (auto _ : state) {
    const auto allocation = bd::bd_allocation(decomposition);
    benchmark::DoNotOptimize(allocation.vertex_count());
  }
}
BENCHMARK(BM_Allocation)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

template <typename Cap>
void run_flow_benchmark(benchmark::State& state) {
  // Random bipartite transport network.
  util::Xoshiro256 rng(1234);
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    flow::MaxFlow<Cap> network(2 * side + 2);
    const std::size_t s = 2 * side;
    const std::size_t t = 2 * side + 1;
    util::Xoshiro256 local = rng.split();
    for (std::size_t i = 0; i < side; ++i) {
      network.add_arc(s, i, Cap(local.uniform_int(1, 20)));
      network.add_arc(side + i, t, Cap(local.uniform_int(1, 20)));
      for (std::size_t j = 0; j < side; ++j) {
        if (local.uniform01() < 0.3) network.add_infinite_arc(i, side + j);
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(network.run(s, t));
  }
}

void BM_MaxFlowRational(benchmark::State& state) {
  run_flow_benchmark<Rational>(state);
}
void BM_MaxFlowDouble(benchmark::State& state) {
  run_flow_benchmark<double>(state);
}
BENCHMARK(BM_MaxFlowRational)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MaxFlowDouble)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_cost_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
