// E6 — Tightness: a parametric ring family whose incentive ratio
// approaches 2.
//
// Theorem 8 is tight: the lower bound of 2 [5] is witnessed here by the
// 7-ring family near_tight_ring(H) = (1, 1, H, 1, H, 1, 3/(2H)). The bench
// sweeps H and prints ratio(H) → 2 together with the analytic prediction
// ratio = 1 + (α'/α)(1 − α·α').
#include <benchmark/benchmark.h>

#include <cstdio>

#include "exp/families.hpp"
#include "game/sybil_ring.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using game::Rational;

void print_lower_bound_report() {
  std::printf("=== E6: tightness family — ratio(H) -> 2 ===\n\n");
  util::Table table({"H", "alpha", "honest U_v", "best U'", "ratio",
                     "2 - ratio", "predicted"});
  game::SybilOptions options;
  options.samples_per_piece = 48;
  options.refinement_rounds = 40;

  for (const std::int64_t h : {5, 10, 20, 50, 100, 300, 1000, 10000}) {
    const graph::Graph ring = exp::near_tight_ring(Rational(h));
    const bd::Decomposition decomposition(ring);
    const Rational alpha = decomposition.alpha_of(0);
    const game::SybilOptimum optimum =
        game::optimize_sybil_split(ring, 0, options);

    // Analytic shape: α' = α·(1 − w₀/w(B)) with w(B) = 1 + 2H.
    const Rational alpha_prime =
        alpha * (Rational(1) - Rational(1) / (Rational(1) + Rational(2 * h)));
    const Rational predicted =
        Rational(1) + alpha_prime / alpha * (Rational(1) - alpha * alpha_prime);

    table.add_row({std::to_string(h),
                   util::format_double(alpha.to_double(), 6),
                   util::format_double(optimum.honest_utility.to_double(), 6),
                   util::format_double(optimum.utility.to_double(), 6),
                   util::format_double(optimum.ratio.to_double(), 6),
                   util::format_double(2.0 - optimum.ratio.to_double(), 6),
                   util::format_double(predicted.to_double(), 6)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check: measured ratio climbs toward (never beyond) 2 and "
              "tracks the analytic prediction.\n\n");

  // The manipulator weight s is a free parameter of the construction: the
  // limit is governed by H alone (s only enters through w₀/w(B)).
  util::Table s_table({"s (manipulator weight)", "H", "ratio"});
  for (const std::int64_t s : {1, 3, 7, 20}) {
    const graph::Graph ring =
        exp::near_tight_ring_s(Rational(s), Rational(200));
    const game::SybilOptimum optimum =
        game::optimize_sybil_split(ring, 0, options);
    s_table.add_row({std::to_string(s), "200",
                     util::format_double(optimum.ratio.to_double(), 6)});
  }
  std::printf("%s\n", s_table.to_text().c_str());
  std::printf("shape check: the ratio depends on H, not on the manipulator's "
              "own endowment (all rows near 2 - 3/(2·200+1)).\n\n");
}

void BM_NearTightOptimization(benchmark::State& state) {
  const graph::Graph ring =
      exp::near_tight_ring(Rational(state.range(0)));
  game::SybilOptions options;
  options.samples_per_piece = 24;
  options.refinement_rounds = 20;
  for (auto _ : state) {
    const auto optimum = game::optimize_sybil_split(ring, 0, options);
    benchmark::DoNotOptimize(optimum.ratio);
  }
}
BENCHMARK(BM_NearTightOptimization)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_lower_bound_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
