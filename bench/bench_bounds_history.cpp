// E7 — Bounds history: measured worst cases against the literature's
// bounds 4 [5] → 3 [9] → 2 (this paper, tight).
//
// For each ring size, the measured sup of the incentive ratio is printed
// next to the three analytic bounds. Expected shape: measurements respect
// all three bounds, approach 2 on the tightness family, and show how loose
// 4 and 3 were.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "exp/families.hpp"
#include "exp/sweep.hpp"
#include "game/incentive_ratio.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using game::Rational;

void print_bounds_report() {
  std::printf("=== E7: bounds history (4 -> 3 -> 2) vs measured sup ===\n\n");
  game::SybilOptions options;
  options.samples_per_piece = 24;
  options.refinement_rounds = 24;

  util::Table table({"ring family", "measured sup", "bound [5] (4)",
                     "bound [9] (3)", "Thm 8 (2)", "slack to 2"});
  auto add = [&](const char* family, const Rational& measured) {
    table.add_row({family, util::format_double(measured.to_double(), 6),
                   measured <= Rational(4) ? "respected" : "VIOLATED",
                   measured <= Rational(3) ? "respected" : "VIOLATED",
                   measured <= Rational(2) ? "respected" : "VIOLATED",
                   util::format_double(2.0 - measured.to_double(), 6)});
  };

  add("exhaustive 3-rings {1..4}",
      exp::sweep_rings(exp::exhaustive_rings(3, 4), options).max_ratio);
  add("exhaustive 4-rings {1..3}",
      exp::sweep_rings(exp::exhaustive_rings(4, 3), options).max_ratio);
  add("random 5-rings",
      exp::sweep_rings(exp::random_rings(10, 5, 2021), options).max_ratio);
  add("random 7-rings",
      exp::sweep_rings(exp::random_rings(5, 7, 2022), options).max_ratio);
  add("adversarial 7-ring",
      game::optimize_sybil_split(
          graph::make_ring({Rational(7), Rational(6), Rational(22),
                            Rational(5), Rational(48), Rational(9),
                            Rational(2)}),
          0, options)
          .ratio);
  add("tightness family H=100",
      game::optimize_sybil_split(exp::near_tight_ring(Rational(100)), 0,
                                 options)
          .ratio);
  add("tightness family H=10000",
      game::optimize_sybil_split(exp::near_tight_ring(Rational(10000)), 0,
                                 options)
          .ratio);

  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check: the 2010s bounds (4, 3) are loose everywhere; "
              "the tight bound 2 is approached but never crossed.\n\n");
}

void BM_RingRatioScan(benchmark::State& state) {
  const auto rings =
      exp::random_rings(1, static_cast<std::size_t>(state.range(0)), 7, 8);
  game::SybilOptions options;
  options.samples_per_piece = 16;
  options.refinement_rounds = 16;
  for (auto _ : state) {
    const auto result = game::ring_incentive_ratio(rings[0], options);
    benchmark::DoNotOptimize(result.best_ratio);
  }
}
BENCHMARK(BM_RingRatioScan)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_bounds_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
