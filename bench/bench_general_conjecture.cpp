// E11 — the conclusion's conjecture: incentive ratio ≤ 2 on general
// networks.
//
// Exhaustive neighbor-partition Sybil attacks (weights searched over the
// simplex, every evaluation exact) on complete graphs, stars, the Fig. 1
// example, random connected graphs and theta-like graphs. Expected shape:
// no evaluated attack exceeds 2; rings remain the worst family observed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "exp/families.hpp"
#include "game/sybil_general.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using game::Rational;

void print_conjecture_report() {
  std::printf("=== E11: conjecture — Sybil ratio <= 2 beyond rings ===\n\n");

  struct Named {
    std::string name;
    graph::Graph graph;
  };
  std::vector<Named> graphs;
  graphs.push_back({"K4 uneven", graph::make_complete({Rational(1), Rational(3),
                                                       Rational(2),
                                                       Rational(5)})});
  graphs.push_back({"K5 uniform",
                    graph::make_complete(std::vector<Rational>(5, Rational(1)))});
  graphs.push_back({"star-5", graph::make_star({Rational(3), Rational(1),
                                                Rational(4), Rational(1),
                                                Rational(5)})});
  graphs.push_back({"fig1", graph::make_fig1_example()});
  // Paths: the other degree-2 family — splitting an interior vertex
  // disconnects the network, a qualitatively different attack surface.
  graphs.push_back({"path-6", graph::make_path({Rational(3), Rational(1),
                                                Rational(5), Rational(2),
                                                Rational(4), Rational(1)})});
  graphs.push_back({"path-7 adversarial",
                    graph::make_path({Rational(7), Rational(6), Rational(22),
                                      Rational(5), Rational(48), Rational(9),
                                      Rational(2)})});
  util::Xoshiro256 rng(1111);
  for (int i = 0; i < 4; ++i) {
    graphs.push_back({"random G(5,.5) #" + std::to_string(i),
                      graph::make_random_connected(5, 0.5, rng, 6)});
  }
  // Theta graph: a ring with a chord path (first non-ring cycle structure).
  {
    graph::Graph theta(std::vector<Rational>{Rational(2), Rational(1),
                                             Rational(3), Rational(1),
                                             Rational(2), Rational(4)});
    theta.add_edge(0, 1);
    theta.add_edge(1, 2);
    theta.add_edge(2, 3);
    theta.add_edge(3, 4);
    theta.add_edge(4, 0);
    theta.add_edge(1, 5);
    theta.add_edge(5, 3);
    graphs.push_back({"theta", std::move(theta)});
  }

  game::GeneralSybilOptions options;
  options.grid = 10;
  options.refinement_rounds = 8;

  util::Table table({"graph", "worst vertex", "degree", "ratio", "<= 2"});
  Rational global_worst(0);
  for (const auto& [name, g] : graphs) {
    Rational worst(0);
    graph::Vertex argmax = 0;
    std::size_t argmax_degree = 0;
    for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.degree(v) < 2 || g.weight(v).is_zero()) continue;
      const auto optimum = game::optimize_general_sybil(g, v, options);
      if (worst < optimum.ratio) {
        worst = optimum.ratio;
        argmax = v;
        argmax_degree = g.degree(v);
      }
    }
    if (global_worst < worst) global_worst = worst;
    table.add_row({name, "v" + std::to_string(argmax),
                   std::to_string(argmax_degree),
                   util::format_double(worst.to_double(), 6),
                   worst <= Rational(2) ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("max over all non-ring attacks: %.6f — conjecture %s; rings "
              "stay the extremal family.\n\n",
              global_worst.to_double(),
              global_worst <= Rational(2) ? "holds" : "VIOLATED");
}

void BM_GeneralSybil(benchmark::State& state) {
  util::Xoshiro256 rng(1113);
  const graph::Graph g = graph::make_random_connected(
      static_cast<std::size_t>(state.range(0)), 0.5, rng, 5);
  graph::Vertex attacker = 0;
  while (g.degree(attacker) < 2) ++attacker;  // a connected graph has one
  game::GeneralSybilOptions options;
  options.grid = 6;
  options.refinement_rounds = 4;
  for (auto _ : state) {
    const auto optimum = game::optimize_general_sybil(g, attacker, options);
    benchmark::DoNotOptimize(optimum.ratio);
  }
}
BENCHMARK(BM_GeneralSybil)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_conjecture_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
