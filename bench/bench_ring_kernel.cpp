// bench_ring_kernel — before/after measurement of the ring-aware bottleneck
// kernel (PR 3): canonical-form memoization, incremental residual-reusing
// max-flow, and the combinatorial O(n) path/cycle cut kernel.
//
// Passes over the fixed PR-2 sweep workload (12 random 7-rings, all 84
// (ring, vertex) Sybil tasks), all in one binary:
//   * pr2 — the PR-2 engine: memo cache, warm starts and flow arenas on,
//     every PR-3 layer off. This is the reference both for timing and for
//     the bit-identity contract.
//   * v3  — the PR-3 engine (library default): canonical cache keys,
//     incremental flow reruns, and the ring kernel all on.
//
// Contracts enforced (nonzero exit on violation):
//   * results_identical   — pr2 and v3 optima agree bit-for-bit;
//   * speedup >= 2x       — pr2 seconds / v3 seconds on the fixed workload;
//   * cross-check         — >= 1000 random ring/path instances decomposed
//     with HotPathConfig::cross_check_kernel, which runs the Dinic oracle in
//     lockstep with the kernel and throws on any disagreement: zero allowed;
//   * canonical hit ratio — a rotation-heavy workload (every rotation and
//     reflection of a few base rings) must be served >= 50% from the
//     canonical cache.
//
// Timings, contract outcomes and the v3 pass's perf counters are written to
// BENCH_ringkernel.json at the repository root.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bd/decomposition.hpp"
#include "bd/memo.hpp"
#include "exp/families.hpp"
#include "game/sybil_ring.hpp"
#include "numeric/bigint.hpp"
#include "util/perf_counters.hpp"
#include "util/timer.hpp"

namespace {

using namespace ringshare;
using num::BigInt;
using num::Rational;

#ifndef RINGSHARE_REPO_ROOT
#define RINGSHARE_REPO_ROOT "."
#endif

/// Select an engine generation and start from a clean cache and counters.
/// Layers that postdate PR 3 (the whole-decomposition peel cache and the
/// signature oracle) are held off in BOTH configurations: this bench
/// certifies the PR-3 layers in isolation, and leaving newer caches on
/// would accelerate the "pr2" baseline and absorb the canonical workload
/// before the bottleneck cache ever sees a lookup.
void configure(bool pr3_layers) {
  BigInt::set_fast_path_enabled(true);
  bd::HotPathConfig config;
  config.decomposition_cache = false;
  config.signature_oracle = false;
  if (!pr3_layers) {
    // PR-2 engine: the first three accelerators only. The PR-3 fields carry
    // default member initializers (= on), so they must be switched off
    // explicitly — a 3-value brace-init would leave them enabled.
    config.canonical_cache = false;
    config.incremental_flow = false;
    config.ring_kernel = false;
    config.cross_check_kernel = false;
  }
  bd::hot_path_config() = config;
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();
  util::PerfCounters::reset();
}

struct SweepRun {
  double seconds = 0;
  std::vector<std::string> outputs;  ///< per task, full optimum stringified
  util::PerfSnapshot counters;
};

/// The fixed 84-task Sybil sweep under one engine generation.
SweepRun run_sweep(const std::vector<graph::Graph>& rings, bool pr3_layers) {
  configure(pr3_layers);
  const game::SybilOptions options;  // exact per-piece solver (v2 default)
  SweepRun run;
  util::Timer timer;
  for (const graph::Graph& ring : rings) {
    for (graph::Vertex v = 0; v < ring.vertex_count(); ++v) {
      const game::SybilOptimum optimum =
          game::optimize_sybil_split(ring, v, options);
      std::ostringstream line;
      line << "ratio=" << optimum.ratio.to_string()
           << " w1*=" << optimum.w1_star.to_string()
           << " U=" << optimum.utility.to_string()
           << " H=" << optimum.honest_utility.to_string();
      run.outputs.push_back(line.str());
    }
  }
  run.seconds = timer.elapsed_seconds();
  run.counters = util::PerfCounters::snapshot();
  return run;
}

/// Decompose >= `instances` random ring instances with the kernel and the
/// Dinic oracle in lockstep (cross_check_kernel throws std::logic_error on
/// the first differing maximal minimizer). Returns the disagreement count.
std::size_t cross_check_disagreements(std::size_t instances,
                                      std::uint64_t seed) {
  configure(/*pr3_layers=*/true);
  bd::hot_path_config().memo_cache = false;  // force every solve to evaluate
  bd::hot_path_config().cross_check_kernel = true;
  const std::vector<graph::Graph> rings =
      exp::random_rings(instances, 6, seed, 18);
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    try {
      const bd::Decomposition decomposition(rings[i]);
      if (!bd::proposition3_violations(rings[i], decomposition).empty())
        ++disagreements;
    } catch (const std::logic_error& error) {
      std::printf("cross-check disagreement (instance %zu): %s\n", i,
                  error.what());
      ++disagreements;
    }
  }
  return disagreements;
}

/// Rotation-heavy workload: all rotations and reflections of a few base
/// rings. With canonical keys every variant of a base instance (and of its
/// peel subgraphs) shares one cache entry, so the hit ratio approaches 1;
/// verbatim keys would miss on every variant.
double canonical_hit_ratio(std::size_t base_rings, std::size_t n,
                           std::uint64_t seed, std::size_t* decompositions) {
  configure(/*pr3_layers=*/true);
  const std::vector<graph::Graph> bases =
      exp::random_rings(base_rings, n, seed, 25);
  *decompositions = 0;
  for (const graph::Graph& base : bases) {
    const std::vector<Rational>& weights = base.weights();
    for (int reflect = 0; reflect < 2; ++reflect) {
      for (std::size_t shift = 0; shift < n; ++shift) {
        std::vector<Rational> variant = weights;
        if (reflect) std::reverse(variant.begin(), variant.end());
        std::rotate(variant.begin(),
                    variant.begin() + static_cast<std::ptrdiff_t>(shift),
                    variant.end());
        const bd::Decomposition decomposition(graph::make_ring(variant));
        (void)decomposition;
        ++*decompositions;
      }
    }
  }
  return util::PerfCounters::snapshot().cache_hit_ratio();
}

}  // namespace

int main() {
  // The fixed PR-2 workload: 12 random 7-rings, all 84 (ring, vertex) tasks.
  const std::vector<graph::Graph> rings = exp::random_rings(12, 7, 9000, 30);

  std::printf("[ringkernel] pr2 pass (PR-3 layers off)...\n");
  const SweepRun pr2 = run_sweep(rings, /*pr3_layers=*/false);
  std::printf("[ringkernel] pr2 %.3fs\n", pr2.seconds);

  std::printf("[ringkernel] v3 pass (canonical cache + incremental flow + "
              "kernel)...\n");
  const SweepRun v3 = run_sweep(rings, /*pr3_layers=*/true);
  std::printf("[ringkernel] v3 %.3fs\n", v3.seconds);

  const bool results_identical = pr2.outputs == v3.outputs;
  const double speedup = v3.seconds > 0 ? pr2.seconds / v3.seconds : 0;
  std::printf("[ringkernel] speedup %.2fx, %s\n", speedup,
              results_identical ? "results identical" : "RESULTS DIFFER");

  std::printf("[cross-check] 1000 random instances, kernel vs Dinic...\n");
  util::Timer cc_timer;
  const std::size_t cc_disagreements = cross_check_disagreements(1000, 31337);
  const double cc_seconds = cc_timer.elapsed_seconds();
  const std::uint64_t cc_evals =
      util::PerfCounters::snapshot().ring_kernel_cross_checks;
  std::printf("[cross-check] %zu disagreements over %llu lockstep evals "
              "in %.3fs\n",
              cc_disagreements,
              static_cast<unsigned long long>(cc_evals), cc_seconds);

  std::printf("[canonical] rotation-heavy workload...\n");
  std::size_t canonical_tasks = 0;
  const double hit_ratio = canonical_hit_ratio(6, 8, 2024, &canonical_tasks);
  std::printf("[canonical] %zu decompositions, hit ratio %.3f\n",
              canonical_tasks, hit_ratio);

  const std::string json_path =
      std::string(RINGSHARE_REPO_ROOT) + "/BENCH_ringkernel.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"ring_kernel\",\n"
        << "  \"workload\": {\"rings\": " << rings.size()
        << ", \"n\": 7, \"tasks\": " << v3.outputs.size() << "},\n"
        << "  \"pr2_seconds\": " << pr2.seconds << ",\n"
        << "  \"v3_seconds\": " << v3.seconds << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"results_identical\": " << (results_identical ? "true" : "false")
        << ",\n"
        << "  \"cross_check\": {\"instances\": 1000, \"lockstep_evals\": "
        << cc_evals << ", \"disagreements\": " << cc_disagreements
        << ", \"seconds\": " << cc_seconds << "},\n"
        << "  \"canonical\": {\"decompositions\": " << canonical_tasks
        << ", \"hit_ratio\": " << hit_ratio << "},\n"
        << "  \"pr2_counters\": " << pr2.counters.to_json(2) << ",\n"
        << "  \"v3_counters\": " << v3.counters.to_json(2) << "\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  int exit_code = 0;
  if (!results_identical) {
    std::printf("FAIL: optima differ between the pr2 and v3 engines\n");
    exit_code = 1;
  }
  if (speedup < 2.0) {
    std::printf("FAIL: speedup %.2fx < 2x\n", speedup);
    exit_code = 1;
  }
  if (cc_disagreements > 0) {
    std::printf("FAIL: %zu kernel/Dinic disagreements\n", cc_disagreements);
    exit_code = 1;
  }
  if (hit_ratio < 0.5) {
    std::printf("FAIL: canonical hit ratio %.3f < 0.5\n", hit_ratio);
    exit_code = 1;
  }
  configure(/*pr3_layers=*/true);
  return exit_code;
}
