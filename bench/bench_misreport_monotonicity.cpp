// E8 — Theorem 10 + Proposition 11: monotone utility and the α_v(x) case
// census under misreporting.
//
// Sweeps random rings and random connected graphs, verifies U_v(x)
// non-decreasing on the exact breakpoint-aware trace, and tabulates how
// often each α-shape (Case B-1/B-2/B-3) occurs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "analysis/prop11.hpp"
#include "exp/families.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;

void print_monotonicity_report() {
  std::printf("=== E8: Thm 10 monotone U_v(x) + Prop 11 case census ===\n\n");

  std::map<std::string, int> census;
  int checked = 0;
  int violations = 0;
  int breakpoints_total = 0;
  int breakpoints_exact = 0;

  auto scan = [&](const graph::Graph& g) {
    for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.weight(v).is_zero()) continue;
      const game::MisreportAnalysis analysis(g, v);
      const analysis::Prop11Report report =
          analysis::verify_prop11(analysis, 12);
      ++census[analysis::to_string(report.alpha_case)];
      ++checked;
      violations += static_cast<int>(report.violations.size());
      for (const auto& bp : analysis.partition().breakpoints) {
        ++breakpoints_total;
        if (bp.exact) ++breakpoints_exact;
      }
    }
  };

  for (const auto& ring : exp::random_rings(8, 5, 888, 8)) scan(ring);
  for (const auto& ring : exp::random_rings(5, 6, 889, 8)) scan(ring);
  util::Xoshiro256 rng(890);
  for (int i = 0; i < 5; ++i) scan(graph::make_random_connected(6, 0.45, rng, 6));

  util::Table table({"alpha shape", "count", "share"});
  for (const auto& [shape, count] : census) {
    table.add_row({"Case " + shape, std::to_string(count),
                   util::format_double(100.0 * count / checked, 1) + "%"});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("agents checked: %d;  Thm 10/Prop 11 violations: %d\n", checked,
              violations);
  std::printf("structure breakpoints: %d total, %d exactly snapped (%.1f%%)\n\n",
              breakpoints_total, breakpoints_exact,
              breakpoints_total
                  ? 100.0 * breakpoints_exact / breakpoints_total
                  : 100.0);
}

void BM_MisreportTrace(benchmark::State& state) {
  const auto rings =
      exp::random_rings(1, static_cast<std::size_t>(state.range(0)), 888, 8);
  for (auto _ : state) {
    const game::MisreportAnalysis analysis(rings[0], 0);
    const auto report = analysis::verify_prop11(analysis, 12);
    benchmark::DoNotOptimize(report.trace.size());
  }
}
BENCHMARK(BM_MisreportTrace)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_monotonicity_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
