// E4 — Fig. 4: the possible forms of B(w1^0, w2^0) on the honest split
// path (Lemma 14 for C-class manipulators, Lemma 20 / Case D-1 for
// B-class).
//
// Classifies the initial decomposition form for every vertex of a ring
// sweep and prints the census: every single one must land in
// {C-1, C-2, C-3, D-1}, C-cases iff the manipulator was C class.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "analysis/forms.hpp"
#include "exp/families.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using analysis::InitialForm;

void print_fig4_report() {
  std::printf("=== E4: Fig. 4 — forms of the honest split path ===\n");

  std::vector<graph::Graph> rings = exp::random_rings(12, 5, 444, 8);
  {
    auto more = exp::random_rings(10, 6, 445, 8);
    rings.insert(rings.end(), more.begin(), more.end());
    auto odd = exp::random_rings(8, 7, 446, 8);
    rings.insert(rings.end(), odd.begin(), odd.end());
  }
  rings.push_back(exp::uniform_ring(5));   // the α = 1 Case C-1 shape
  rings.push_back(exp::uniform_ring(6));
  rings.push_back(exp::alternating_ring(6, game::Rational(5)));

  std::map<std::string, int> census;
  int violations = 0;
  int total = 0;
  for (const graph::Graph& ring : rings) {
    for (graph::Vertex v = 0; v < ring.vertex_count(); ++v) {
      const analysis::FormReport report =
          analysis::classify_initial_form(ring, v);
      const std::string key =
          analysis::to_string(report.form) + " (ring class " +
          bd::to_string(report.ring_class) + ")";
      ++census[key];
      ++total;
      violations += static_cast<int>(report.violations.size());
    }
  }

  util::Table table({"form (manipulator ring class)", "count", "share"});
  for (const auto& [key, count] : census) {
    table.add_row({key, std::to_string(count),
                   util::format_double(100.0 * count / total, 1) + "%"});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("lemma 14/20 violations across %d classifications: %d\n\n",
              total, violations);
}

void BM_FormClassification(benchmark::State& state) {
  const auto rings = exp::random_rings(1, static_cast<std::size_t>(state.range(0)),
                                       444, 8);
  for (auto _ : state) {
    const auto report = analysis::classify_initial_form(rings[0], 0);
    benchmark::DoNotOptimize(report.form);
  }
}
BENCHMARK(BM_FormClassification)->Arg(5)->Arg(7)->Arg(9);

}  // namespace

int main(int argc, char** argv) {
  print_fig4_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
