// bench_numeric_filter — certification bench for the lazy-exact numeric
// layer (numeric/filtered.hpp): dyadic interval filters in front of the
// bracket-height sign tests and orderings of the deviation pipeline.
//
// Sections:
//   * sweep       — the standard deviation workload (all three deviation
//     kinds over 10 random 6-rings, every breakpoint isolated to
//     bracket_bits): filter on vs filter off, best of three cold reps
//     each. The optima must be bit-identical — the filter only answers
//     when its interval separates from zero and falls back to exact
//     arithmetic otherwise — and the filtered pass's hit rate
//     hits / (hits + fallbacks) must be >= 90%.
//   * cross_check — >= 1000 randomized deviation tasks solved with
//     HotPathConfig::cross_check_filtered armed: every filtered answer is
//     recomputed by the exact oracle and a disagreement throws
//     std::logic_error. Zero violations required.
//   * ties        — constructed exact-tie instances where the interval
//     CANNOT decide: a polynomial sign probe exactly at a tall rational
//     root, equal linear forms Γ − λ·w with bracket-height operands, and
//     equal cross-ratio comparisons. The filter must fall back (and count
//     filter_exact_ties) yet still return the exact zero/equality.
//
// Timings, counters and contract outcomes go to BENCH_filter.json at the
// repository root; any violated contract exits nonzero.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bd/memo.hpp"
#include "exp/families.hpp"
#include "game/deviation.hpp"
#include "game/piece_solver.hpp"
#include "numeric/bigint.hpp"
#include "numeric/filtered.hpp"
#include "numeric/poly_roots.hpp"
#include "util/perf_counters.hpp"
#include "util/timer.hpp"

namespace {

using namespace ringshare;
using num::BigInt;
using num::Rational;

#ifndef RINGSHARE_REPO_ROOT
#define RINGSHARE_REPO_ROOT "."
#endif

void configure(bool filtered, bool cross_check) {
  BigInt::set_fast_path_enabled(true);
  bd::HotPathConfig config;  // library defaults: every accelerator on
  config.filtered_numerics = filtered;
  config.cross_check_filtered = cross_check;
  bd::hot_path_config() = config;
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();
  game::PartitionMemo::instance().clear();
  util::PerfCounters::reset();
}

/// Full textual observation of one deviation optimum — everything a sweep
/// consumer reads, so string equality here is result identity.
std::string observe_optimum(const game::DeviationOptimum& opt) {
  std::ostringstream os;
  os << game::to_string(opt.kind) << '/' << opt.vertex << '/' << opt.partner
     << ' ' << opt.t_star.to_string() << ' ' << opt.utility.to_string() << ' '
     << opt.honest_utility.to_string() << ' ' << opt.ratio.to_string();
  return os.str();
}

struct SweepRun {
  double seconds = 0;
  double shared_ms = 0;  ///< partition + decompose phase time
  std::vector<std::string> outputs;
  util::PerfSnapshot counters;
};

/// One cold pass of the full deviation sweep (sybil + misreport +
/// collusion) over every ring — the deviation bench's standard workload,
/// which is where the bracket-height traffic the filter fronts actually
/// lives.
SweepRun run_sweep(const std::vector<graph::Graph>& rings, bool filtered) {
  configure(filtered, /*cross_check=*/false);
  game::DeviationSweep sweep;
  sweep.kinds = {game::DeviationKind::kSybil, game::DeviationKind::kMisreport,
                 game::DeviationKind::kCollusion};
  SweepRun run;
  util::Timer timer;
  for (const graph::Graph& ring : rings) {
    for (const game::DeviationTask& task : sweep.tasks(ring)) {
      run.outputs.push_back(observe_optimum(sweep.run(ring, task)));
    }
  }
  run.seconds = timer.elapsed_seconds();
  run.counters = util::PerfCounters::snapshot();
  run.shared_ms =
      (run.counters.phase_ns[static_cast<int>(util::Phase::kPartition)] +
       run.counters.phase_ns[static_cast<int>(util::Phase::kDecompose)]) /
      1e6;
  return run;
}

/// Adversarial exact ties: every probe is constructed so the true answer
/// is exactly zero (or exact equality) at bracket-height operands — the
/// interval must straddle, the exact fallback must run, and the sign must
/// still come back 0. Returns the number of wrong answers.
std::size_t run_tie_suite() {
  configure(/*filtered=*/true, /*cross_check=*/true);
  std::size_t wrong = 0;

  // A tall rational (~bracket height: 2^120-denominator tail) and a
  // polynomial that vanishes exactly there: p(t) = (t - r)·(t + 1)·3.
  const Rational r =
      Rational(BigInt(1) + BigInt(1).shifted_left(120), BigInt(3) * BigInt(1).shifted_left(119));
  const num::Polynomial p =
      num::Polynomial::linear(-r, Rational(1)) *
      num::Polynomial::linear(Rational(1), Rational(1)) *
      num::Polynomial::constant(Rational(3));
  const num::FilterOptions armed{/*enabled=*/true, /*cross_check=*/true};
  for (int k = 0; k < 32; ++k) {
    if (p.sign_at(r, armed) != 0) ++wrong;
    // Off-root probes at the same height keep the suite honest about
    // nonzero signs too.
    const Rational nearby =
        r + Rational(BigInt(2 * k + 1), BigInt(1).shifted_left(121));
    if (p.sign_at(nearby, armed) == 0) ++wrong;
  }

  // Equal α curves: a/b vs (a·s)/(b·s) with tall s — cross products tie.
  const num::FilteredCompare compare(armed);
  const num::FilteredSign sign(armed);
  const Rational scale(BigInt(7) * BigInt(1).shifted_left(118) + BigInt(5));
  for (int k = 1; k <= 32; ++k) {
    const Rational a = Rational(BigInt(k) * BigInt(1).shifted_left(117) + BigInt(11),
                                BigInt(1).shifted_left(119) + BigInt(k));
    if (compare(a, a) != 0) ++wrong;
    if (compare.ratios(a * scale, scale, a * Rational(2), Rational(2)) != 0)
      ++wrong;
    if (sign.of_difference(a * scale / scale, a) != 0) ++wrong;
    // Γ − λ·w == 0 exactly: λ = Γ/w at bracket height.
    const Rational w =
        Rational(BigInt(3), BigInt(1).shifted_left(120)) + Rational(k);
    if (sign.of_linear(a * w, a, w) != 0) ++wrong;
  }
  return wrong;
}

const char* bool_json(bool value) { return value ? "true" : "false"; }

}  // namespace

int main() {
  // Standard workload: the deviation bench's 10 random 6-rings, all three
  // deviation kinds = 170 tasks, every breakpoint isolated to the default
  // bracket_bits = 120.
  const std::vector<graph::Graph> rings = exp::random_rings(10, 6, 7100, 24);

  std::printf("[filter] filtered pass (best of 3)...\n");
  SweepRun filtered = run_sweep(rings, /*filtered=*/true);
  for (int rep = 1; rep < 3; ++rep) {
    SweepRun again = run_sweep(rings, /*filtered=*/true);
    if (again.outputs != filtered.outputs) {
      std::printf("FAIL: filtered reps differ\n");
      return 1;
    }
    if (again.shared_ms < filtered.shared_ms) filtered = std::move(again);
  }

  std::printf("[filter] exact pass (filter off, best of 3)...\n");
  SweepRun exact = run_sweep(rings, /*filtered=*/false);
  for (int rep = 1; rep < 3; ++rep) {
    SweepRun again = run_sweep(rings, /*filtered=*/false);
    if (again.shared_ms < exact.shared_ms) exact = std::move(again);
  }

  const bool results_identical = filtered.outputs == exact.outputs;
  const std::uint64_t hits = filtered.counters.filter_hits;
  const std::uint64_t fallbacks = filtered.counters.filter_fallbacks;
  const double hit_rate =
      hits + fallbacks > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + fallbacks)
          : 0.0;
  const bool exact_pass_clean = exact.counters.filter_hits == 0 &&
                                exact.counters.filter_fallbacks == 0;
  std::printf(
      "[filter] shared phase %.1fms filtered vs %.1fms exact, %llu hits, "
      "%llu fallbacks (hit rate %.4f), %s\n",
      filtered.shared_ms, exact.shared_ms,
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(fallbacks), hit_rate,
      results_identical ? "results identical" : "RESULTS DIFFER");

  // Cross-check sweep: every filtered answer re-derived exactly, over
  // >= 1000 fresh deviation tasks (one per instance, kinds round-robin).
  std::printf("[cross-check] 1000 instances, cross_check_filtered armed...\n");
  configure(/*filtered=*/true, /*cross_check=*/true);
  std::size_t cc_instances = 0;
  std::size_t cc_violations = 0;
  util::Timer cc_timer;
  for (const graph::Graph& ring : exp::random_rings(1000, 5, 424242, 16)) {
    game::DeviationTask task;
    task.kind = static_cast<game::DeviationKind>(cc_instances %
                                                 game::kDeviationKindCount);
    task.vertex = static_cast<graph::Vertex>(cc_instances %
                                             ring.vertex_count());
    if (task.kind == game::DeviationKind::kCollusion)
      task.partner = (task.vertex + 1) % ring.vertex_count();
    ++cc_instances;
    try {
      (void)game::optimize_deviation(ring, task);
    } catch (const std::logic_error& error) {
      std::printf("cross-check violation (instance %zu): %s\n", cc_instances,
                  error.what());
      ++cc_violations;
    }
  }
  const double cc_seconds = cc_timer.elapsed_seconds();
  const util::PerfSnapshot cc_counters = util::PerfCounters::snapshot();
  std::printf("[cross-check] %zu violations over %zu instances in %.3fs\n",
              cc_violations, cc_instances, cc_seconds);

  std::printf("[ties] constructed exact-tie suite...\n");
  const std::size_t tie_wrong = run_tie_suite();
  const util::PerfSnapshot tie_counters = util::PerfCounters::snapshot();
  const bool ties_exercised = tie_counters.filter_exact_ties > 0 &&
                              tie_counters.filter_fallbacks > 0;
  std::printf("[ties] %zu wrong answers, %llu exact ties, %llu fallbacks\n",
              tie_wrong,
              static_cast<unsigned long long>(tie_counters.filter_exact_ties),
              static_cast<unsigned long long>(tie_counters.filter_fallbacks));

  const std::string json_path =
      std::string(RINGSHARE_REPO_ROOT) + "/BENCH_filter.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"numeric_filter\",\n"
        << "  \"workload\": {\"rings\": " << rings.size()
        << ", \"n\": 6, \"tasks\": " << filtered.outputs.size() << "},\n"
        << "  \"filtered_shared_ms\": " << filtered.shared_ms << ",\n"
        << "  \"exact_shared_ms\": " << exact.shared_ms << ",\n"
        << "  \"speedup\": "
        << (filtered.shared_ms > 0 ? exact.shared_ms / filtered.shared_ms : 0)
        << ",\n"
        << "  \"results_identical\": " << bool_json(results_identical) << ",\n"
        << "  \"filter_hits\": " << hits << ",\n"
        << "  \"filter_fallbacks\": " << fallbacks << ",\n"
        << "  \"filter_exact_ties\": " << filtered.counters.filter_exact_ties
        << ",\n"
        << "  \"hit_rate\": " << hit_rate << ",\n"
        << "  \"hit_rate_floor\": 0.9,\n"
        << "  \"exact_pass_counters_clean\": " << bool_json(exact_pass_clean)
        << ",\n"
        << "  \"cross_check\": {\"instances\": " << cc_instances
        << ", \"violations\": " << cc_violations
        << ", \"seconds\": " << cc_seconds
        << ", \"filter_hits\": " << cc_counters.filter_hits << "},\n"
        << "  \"ties\": {\"wrong_answers\": " << tie_wrong
        << ", \"exact_ties\": " << tie_counters.filter_exact_ties
        << ", \"fallbacks\": " << tie_counters.filter_fallbacks
        << ", \"exercised\": " << bool_json(ties_exercised) << "},\n"
        << "  \"filtered_counters\": " << filtered.counters.to_json(2)
        << "\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  int exit_code = 0;
  if (!results_identical) {
    std::printf("FAIL: partitions differ between filter modes\n");
    exit_code = 1;
  }
  if (hit_rate < 0.9) {
    std::printf("FAIL: filter hit rate %.4f below the 0.9 floor\n", hit_rate);
    exit_code = 1;
  }
  if (!exact_pass_clean) {
    std::printf("FAIL: filter counters moved with the filter disabled\n");
    exit_code = 1;
  }
  if (cc_violations > 0) {
    std::printf("FAIL: %zu cross-check violations\n", cc_violations);
    exit_code = 1;
  }
  if (tie_wrong > 0) {
    std::printf("FAIL: tie suite got %zu wrong answers\n", tie_wrong);
    exit_code = 1;
  }
  if (!ties_exercised) {
    std::printf("FAIL: tie suite never reached the exact fallback\n");
    exit_code = 1;
  }
  configure(/*filtered=*/true, /*cross_check=*/false);
  return exit_code;
}
