// bench_sweep_engine — before/after measurement of the sweep engine v2
// (exact per-piece solver + work-stealing scheduler).
//
// Three passes over one fixed Sybil-sweep workload, all in one binary:
//   * pr1_scan   — the PR-1 engine: dense 64-sample scan + refinement per
//     piece, with every PR-1 accelerator (BigInt fast path, memo cache,
//     warm starts, flow arenas) left on. This is the "accelerators off"
//     reference for the v2 layers.
//   * v2_exact   — the v2 engine: closed-form per-piece stationary-point
//     solver on the stealing pool (the library default).
//   * v2_cold    — v2_exact again with the PR-1 accelerators disabled, to
//     pin the identity contract: the exact solver's optima must be
//     bit-identical whether or not the numeric accelerators are on.
//
// Contracts enforced (nonzero exit on violation):
//   * results_identical — v2_exact and v2_cold agree bit-for-bit;
//   * dominance         — per task, v2_exact's ratio >= pr1_scan's (the
//     exact solver may only improve on the scan, never lose to it);
//   * speedup >= 3x     — pr1_scan seconds / v2_exact seconds;
//   * cross-check       — on 1000 randomized instances the exact per-piece
//     optimum dominates every scan sample (SybilOptions::cross_check,
//     which throws std::logic_error on any violation).
//
// Timings, contract outcomes and the v2 pass's perf counters are written
// to BENCH_sweep.json at the repository root.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bd/decomposition.hpp"
#include "bd/memo.hpp"
#include "exp/families.hpp"
#include "game/sybil_ring.hpp"
#include "numeric/bigint.hpp"
#include "util/perf_counters.hpp"
#include "util/timer.hpp"

namespace {

using namespace ringshare;
using num::BigInt;
using num::Rational;

#ifndef RINGSHARE_REPO_ROOT
#define RINGSHARE_REPO_ROOT "."
#endif

void configure(bool accelerators) {
  BigInt::set_fast_path_enabled(accelerators);
  // This bench contrasts the v1 scan engine with the v2 sweep engine under
  // the PR-1/PR-2 accelerators: pin the later engine layers off in both
  // passes (their fields default to on).
  bd::HotPathConfig config;
  config.memo_cache = accelerators;
  config.warm_start = accelerators;
  config.flow_arena = accelerators;
  config.canonical_cache = false;
  config.incremental_flow = false;
  config.ring_kernel = false;
  config.cross_check_kernel = false;
  bd::hot_path_config() = config;
  bd::BottleneckCache::instance().clear();
  util::PerfCounters::reset();
}

struct SweepRun {
  double seconds = 0;
  std::vector<Rational> ratios;       ///< per task, exact
  std::vector<std::string> outputs;   ///< per task, full optimum stringified
  util::PerfSnapshot counters;
};

/// Run the fixed workload (every vertex of every ring) under one engine
/// configuration and record the exact optima.
SweepRun run_sweep(const std::vector<graph::Graph>& rings,
                   const game::SybilOptions& options, bool accelerators) {
  configure(accelerators);
  SweepRun run;
  util::Timer timer;
  for (const graph::Graph& ring : rings) {
    for (graph::Vertex v = 0; v < ring.vertex_count(); ++v) {
      const game::SybilOptimum optimum =
          game::optimize_sybil_split(ring, v, options);
      std::ostringstream line;
      line << "ratio=" << optimum.ratio.to_string()
           << " w1*=" << optimum.w1_star.to_string()
           << " U=" << optimum.utility.to_string()
           << " H=" << optimum.honest_utility.to_string();
      run.ratios.push_back(optimum.ratio);
      run.outputs.push_back(line.str());
    }
  }
  run.seconds = timer.elapsed_seconds();
  run.counters = util::PerfCounters::snapshot();
  return run;
}

/// Cross-check sweep: exact solver with SybilOptions::cross_check, which
/// throws std::logic_error if any scan sample beats the exact optimum on
/// any piece. Returns the number of violating tasks.
std::size_t cross_check_violations(std::size_t instances, std::size_t n,
                                   std::uint64_t seed) {
  const std::vector<graph::Graph> rings =
      exp::random_rings(instances, n, seed, 12);
  game::SybilOptions options;
  options.cross_check = true;
  std::size_t violations = 0;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    // One vertex per instance keeps 1000 instances tractable while still
    // varying the manipulator's position.
    const graph::Vertex v = static_cast<graph::Vertex>(i % n);
    try {
      (void)game::optimize_sybil_split(rings[i], v, options);
    } catch (const std::logic_error& error) {
      std::printf("cross-check violation (instance %zu, vertex %u): %s\n", i,
                  v, error.what());
      ++violations;
    }
  }
  return violations;
}

}  // namespace

int main() {
  // Fixed workload: 12 random 7-rings, all 84 (ring, vertex) tasks.
  const std::vector<graph::Graph> rings = exp::random_rings(12, 7, 9000, 30);

  game::SybilOptions scan_options;
  scan_options.use_exact_piece_solver = false;
  // PR-1 found breakpoints by pure bisection to the full resolution; the
  // algebraic partition fast path is part of the v2 engine under test.
  scan_options.partition.algebraic_bits = 0;
  const game::SybilOptions exact_options;  // library default: exact solver

  std::printf("[sweep] pr1_scan pass (scan solver, accelerators on)...\n");
  const SweepRun pr1_scan =
      run_sweep(rings, scan_options, /*accelerators=*/true);
  std::printf("[sweep] pr1_scan %.3fs\n", pr1_scan.seconds);

  std::printf("[sweep] v2_exact pass (exact solver, accelerators on)...\n");
  const SweepRun v2_exact =
      run_sweep(rings, exact_options, /*accelerators=*/true);
  std::printf("[sweep] v2_exact %.3fs\n", v2_exact.seconds);

  std::printf("[sweep] v2_cold pass (exact solver, accelerators off)...\n");
  const SweepRun v2_cold =
      run_sweep(rings, exact_options, /*accelerators=*/false);
  std::printf("[sweep] v2_cold %.3fs\n", v2_cold.seconds);

  // Identity contract: the exact solver's optima may not depend on the
  // numeric accelerators in any bit.
  const bool results_identical = v2_exact.outputs == v2_cold.outputs;

  // Dominance contract: exact >= scan on every single task.
  std::size_t dominance_violations = 0;
  std::size_t strict_improvements = 0;
  for (std::size_t k = 0; k < v2_exact.ratios.size(); ++k) {
    if (v2_exact.ratios[k] < pr1_scan.ratios[k]) ++dominance_violations;
    if (pr1_scan.ratios[k] < v2_exact.ratios[k]) ++strict_improvements;
  }

  const double speedup =
      v2_exact.seconds > 0 ? pr1_scan.seconds / v2_exact.seconds : 0;
  std::printf("[sweep] speedup %.2fx, %s, %zu/%zu tasks strictly improved\n",
              speedup, results_identical ? "results identical" : "RESULTS DIFFER",
              strict_improvements, v2_exact.ratios.size());

  std::printf("[cross-check] 1000 randomized instances...\n");
  util::Timer cc_timer;
  const std::size_t cc_violations = cross_check_violations(1000, 5, 424242);
  const double cc_seconds = cc_timer.elapsed_seconds();
  std::printf("[cross-check] %zu violations in %.3fs\n", cc_violations,
              cc_seconds);

  const std::string json_path =
      std::string(RINGSHARE_REPO_ROOT) + "/BENCH_sweep.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"sweep_engine\",\n"
        << "  \"workload\": {\"rings\": " << rings.size()
        << ", \"n\": 7, \"tasks\": " << v2_exact.ratios.size() << "},\n"
        << "  \"pr1_scan_seconds\": " << pr1_scan.seconds << ",\n"
        << "  \"v2_exact_seconds\": " << v2_exact.seconds << ",\n"
        << "  \"v2_cold_seconds\": " << v2_cold.seconds << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"results_identical\": " << (results_identical ? "true" : "false")
        << ",\n"
        << "  \"dominance_violations\": " << dominance_violations << ",\n"
        << "  \"strict_improvements\": " << strict_improvements << ",\n"
        << "  \"cross_check\": {\"instances\": 1000, \"violations\": "
        << cc_violations << ", \"seconds\": " << cc_seconds << "},\n"
        << "  \"v2_counters\": " << v2_exact.counters.to_json(2) << "\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  int exit_code = 0;
  if (!results_identical) {
    std::printf("FAIL: exact optima differ between accelerator modes\n");
    exit_code = 1;
  }
  if (dominance_violations > 0) {
    std::printf("FAIL: scan beat the exact solver on %zu tasks\n",
                dominance_violations);
    exit_code = 1;
  }
  if (speedup < 3.0) {
    std::printf("FAIL: sweep speedup %.2fx < 3x\n", speedup);
    exit_code = 1;
  }
  if (cc_violations > 0) {
    std::printf("FAIL: %zu cross-check violations\n", cc_violations);
    exit_code = 1;
  }
  configure(/*accelerators=*/true);
  return exit_code;
}
