// bench_mechanism_zoo — side-by-side comparison of every registered
// mechanism (bd, prop, karma, and anything registered later) on IDENTICAL
// instance families, through the SAME engine path
// (engine::DeviationEngine::solve).
//
// Workload: 12 random 6-rings (deterministic seed) plus four structured
// families — uniform, alternating, single-heavy, and the near-tight
// Theorem 8 witness ring — with every deviation task of every kind
// (sybil / misreport / collusion) solved per mechanism.
//
// Per mechanism the bench reports wall time, the exact worst incentive
// ratio per kind and overall, welfare (budget balance Σ U_v = Σ w_v and
// mean Nash welfare), and fairness (worst egalitarian share U_v / w_v),
// written to BENCH_mechzoo.json at the repository root.
//
// Contracts (any violation exits nonzero):
//   * results_identical — every BD task solved through the Mechanism
//     interface (optimize_deviation_via_mechanism) is bit-identical to the
//     legacy BD optimizer path: the zoo refactor changed no BD bit;
//   * cross_check reports zero violations: every comparator optimum
//     re-verified against a dense grid scan (PieceSolveOptions::cross_check
//     armed through the symbolic optimizer), and the BD structured subset
//     re-verified against its legacy scan;
//   * misreport ratio is exactly 1 for EVERY mechanism (truthfulness of
//     the report dimension — Theorem 10 for BD, monotone shares for the
//     comparators);
//   * every mechanism is budget-balanced on every instance;
//   * BD's overall worst ratio respects the Theorem 8 bound of 2.
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "bd/memo.hpp"
#include "engine/deviation_engine.hpp"
#include "exp/families.hpp"
#include "game/deviation.hpp"
#include "game/mechanism.hpp"
#include "game/piece_solver.hpp"
#include "graph/builders.hpp"
#include "numeric/bigint.hpp"
#include "util/perf_counters.hpp"
#include "util/timer.hpp"

namespace {

using namespace ringshare;
using num::BigInt;
using num::Rational;

#ifndef RINGSHARE_REPO_ROOT
#define RINGSHARE_REPO_ROOT "."
#endif

/// Library-default accelerators, cold shared caches, zeroed counters — the
/// same starting line for every mechanism's timed pass.
void configure() {
  BigInt::set_fast_path_enabled(true);
  bd::hot_path_config() = bd::HotPathConfig{};
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();
  game::PartitionMemo::instance().clear();
  util::PerfCounters::reset();
}

/// The shared instance family: every mechanism is measured on exactly this
/// list, so the JSON rows are directly comparable.
std::vector<graph::Graph> build_instances() {
  std::vector<graph::Graph> instances =
      exp::random_rings(12, 6, /*seed=*/20260808, /*max_weight=*/9);
  instances.push_back(exp::uniform_ring(6));
  instances.push_back(exp::alternating_ring(6, Rational(5)));
  instances.push_back(exp::single_heavy_ring(7, Rational(50)));
  instances.push_back(exp::near_tight_ring(Rational(100)));
  return instances;
}

const game::DeviationKind kKinds[] = {game::DeviationKind::kSybil,
                                      game::DeviationKind::kMisreport,
                                      game::DeviationKind::kCollusion};

struct MechanismRow {
  std::string tag;
  std::string name;
  double seconds = 0;
  std::size_t tasks = 0;
  Rational worst_ratio[game::kDeviationKindCount];
  Rational overall_worst;
  bool misreport_exactly_one = true;
  bool budget_balanced = true;
  double mean_nash_welfare = 0;
  Rational min_fairness;  ///< min over instances of the egalitarian share
};

/// Solve every task of every kind on every instance under one mechanism,
/// through the engine, folding per-kind worst ratios.
MechanismRow run_mechanism(game::MechanismId id,
                           const std::vector<graph::Graph>& instances) {
  configure();
  const game::Mechanism& m = game::mechanism(id);
  MechanismRow row;
  row.tag = std::string(m.tag());
  row.name = std::string(m.name());

  const engine::DeviationEngine eng;
  util::Timer timer;
  for (const graph::Graph& ring : instances) {
    for (const game::DeviationKind kind : kKinds) {
      for (const game::DeviationTask& task :
           game::deviation_tasks(ring, kind, id)) {
        const game::DeviationOptimum optimum = eng.solve(ring, task);
        ++row.tasks;
        const int k = static_cast<int>(kind);
        if (optimum.ratio > row.worst_ratio[k])
          row.worst_ratio[k] = optimum.ratio;
        if (optimum.ratio > row.overall_worst)
          row.overall_worst = optimum.ratio;
        if (kind == game::DeviationKind::kMisreport &&
            optimum.ratio != Rational(1))
          row.misreport_exactly_one = false;
      }
    }
  }
  row.seconds = timer.elapsed_seconds();

  // Welfare / fairness profile over the honest instances (untimed: these
  // are metrics of the mechanism, not of the optimizer).
  double log_nash_sum = 0;
  bool first = true;
  for (const graph::Graph& ring : instances) {
    const game::MechanismProfile profile = game::mechanism_profile(m, ring);
    Rational total_weight;
    for (graph::Vertex v = 0; v < ring.vertex_count(); ++v)
      total_weight = total_weight + ring.weight(v);
    if (profile.total_utility != total_weight) row.budget_balanced = false;
    log_nash_sum += std::log(profile.nash_welfare);
    if (first || profile.min_share < row.min_fairness)
      row.min_fairness = profile.min_share;
    first = false;
  }
  row.mean_nash_welfare =
      std::exp(log_nash_sum / static_cast<double>(instances.size()));
  return row;
}

/// BD bit-parity: every BD task solved through the Mechanism interface must
/// reproduce the legacy optimizer path exactly.
bool check_bd_parity(const std::vector<graph::Graph>& instances,
                     std::size_t& tasks_checked) {
  configure();
  bool identical = true;
  for (const graph::Graph& ring : instances) {
    for (const game::DeviationKind kind : kKinds) {
      for (const game::DeviationTask& task :
           game::deviation_tasks(ring, kind, game::kBdMechanismId)) {
        const game::DeviationOptimum legacy =
            game::optimize_deviation(ring, task);
        const game::DeviationOptimum via =
            game::optimize_deviation_via_mechanism(ring, task);
        ++tasks_checked;
        if (via.ratio != legacy.ratio || via.t_star != legacy.t_star ||
            via.utility != legacy.utility ||
            via.honest_utility != legacy.honest_utility) {
          identical = false;
          std::printf("PARITY VIOLATION: kind=%s v=%u\n",
                      game::to_string(kind), task.vertex);
        }
      }
    }
  }
  return identical;
}

/// Cross-check pass: every task of every mechanism re-solved with the
/// dense-scan cross-check armed. A comparator violation surfaces as the
/// symbolic optimizer's std::logic_error; a BD violation as the piece
/// solver's. Each is counted, never fatal mid-pass.
void run_cross_check(const std::vector<graph::Graph>& instances,
                     std::size_t& tasks, std::size_t& violations) {
  configure();
  game::DeviationOptions options;
  options.cross_check = true;
  for (game::MechanismId id = 0; id < game::mechanism_count(); ++id) {
    for (const graph::Graph& ring : instances) {
      for (const game::DeviationKind kind : kKinds) {
        for (const game::DeviationTask& task :
             game::deviation_tasks(ring, kind, id)) {
          ++tasks;
          try {
            (void)game::optimize_deviation(ring, task, options);
          } catch (const std::exception& e) {
            ++violations;
            std::printf("CROSS-CHECK VIOLATION: %s kind=%s v=%u: %s\n",
                        std::string(game::mechanism(id).tag()).c_str(),
                        game::to_string(kind), task.vertex, e.what());
          }
        }
      }
    }
  }
}

const char* bool_json(bool value) { return value ? "true" : "false"; }

}  // namespace

int main() {
  const std::vector<graph::Graph> instances = build_instances();
  std::printf("[mechzoo] %zu instances, %zu mechanisms\n", instances.size(),
              game::mechanism_count());

  std::vector<MechanismRow> rows;
  for (game::MechanismId id = 0; id < game::mechanism_count(); ++id) {
    MechanismRow row = run_mechanism(id, instances);
    std::printf(
        "[mechzoo] %-6s %4zu tasks in %.3fs  worst ratio %s (~%.6f)\n",
        row.tag.c_str(), row.tasks, row.seconds,
        row.overall_worst.to_string().c_str(),
        row.overall_worst.to_double());
    rows.push_back(std::move(row));
  }

  std::printf("[mechzoo] BD parity: interface vs legacy optimizers...\n");
  std::size_t parity_tasks = 0;
  const bool results_identical = check_bd_parity(instances, parity_tasks);
  std::printf("[mechzoo] %s over %zu BD tasks\n",
              results_identical ? "results identical" : "RESULTS DIFFER",
              parity_tasks);

  std::printf("[mechzoo] cross-check pass (dense scan armed, all zoo)...\n");
  std::size_t cc_tasks = 0;
  std::size_t cc_violations = 0;
  run_cross_check(instances, cc_tasks, cc_violations);
  std::printf("[mechzoo] cross-check: %zu violations over %zu tasks\n",
              cc_violations, cc_tasks);

  const Rational theorem8_bound(2);
  const bool bd_within_bound = rows[game::kBdMechanismId].overall_worst <=
                               theorem8_bound;

  const std::string json_path =
      std::string(RINGSHARE_REPO_ROOT) + "/BENCH_mechzoo.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"mechanism_zoo\",\n"
        << "  \"workload\": {\"instances\": " << instances.size()
        << ", \"tasks_per_mechanism\": " << rows.front().tasks << "},\n"
        << "  \"mechanisms\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const MechanismRow& row = rows[i];
      out << "    {\"tag\": \"" << row.tag << "\", \"name\": \"" << row.name
          << "\",\n"
          << "     \"seconds\": " << row.seconds << ",\n"
          << "     \"worst_ratio\": {";
      for (int k = 0; k < game::kDeviationKindCount; ++k)
        out << (k ? ", " : "") << "\""
            << game::to_string(static_cast<game::DeviationKind>(k))
            << "\": \"" << row.worst_ratio[k].to_string() << "\"";
      out << "},\n     \"worst_ratio_double\": {";
      for (int k = 0; k < game::kDeviationKindCount; ++k)
        out << (k ? ", " : "") << "\""
            << game::to_string(static_cast<game::DeviationKind>(k))
            << "\": " << row.worst_ratio[k].to_double();
      out << "},\n     \"overall_worst_ratio\": \""
          << row.overall_worst.to_string() << "\",\n"
          << "     \"overall_worst_ratio_double\": "
          << row.overall_worst.to_double() << ",\n"
          << "     \"misreport_ratio_exactly_one\": "
          << bool_json(row.misreport_exactly_one) << ",\n"
          << "     \"budget_balanced\": " << bool_json(row.budget_balanced)
          << ",\n"
          << "     \"mean_nash_welfare\": " << row.mean_nash_welfare << ",\n"
          << "     \"min_fairness\": " << row.min_fairness.to_double()
          << ",\n"
          << "     \"min_fairness_exact\": \"" << row.min_fairness.to_string()
          << "\"}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"results_identical\": " << bool_json(results_identical)
        << ",\n"
        << "  \"bd_parity_tasks\": " << parity_tasks << ",\n"
        << "  \"bd_within_theorem8_bound\": " << bool_json(bd_within_bound)
        << ",\n"
        << "  \"cross_check\": {\"tasks\": " << cc_tasks
        << ", \"violations\": " << cc_violations << "}\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  int exit_code = 0;
  if (!results_identical) {
    std::printf("FAIL: BD via the Mechanism interface differs from the "
                "legacy path\n");
    exit_code = 1;
  }
  if (cc_violations != 0) {
    std::printf("FAIL: %zu cross-check violations\n", cc_violations);
    exit_code = 1;
  }
  if (!bd_within_bound) {
    std::printf("FAIL: BD worst ratio exceeds the Theorem 8 bound of 2\n");
    exit_code = 1;
  }
  for (const MechanismRow& row : rows) {
    if (!row.misreport_exactly_one) {
      std::printf("FAIL: %s misreport ratio is not exactly 1\n",
                  row.tag.c_str());
      exit_code = 1;
    }
    if (!row.budget_balanced) {
      std::printf("FAIL: %s is not budget-balanced\n", row.tag.c_str());
      exit_code = 1;
    }
  }
  configure();
  return exit_code;
}
