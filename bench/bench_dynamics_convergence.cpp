// E9 — Wu–Zhang convergence (Prop. 6): the proportional response dynamics
// reach the BD allocation utilities.
//
// For rings and random graphs of growing size, reports iterations-to-gap
// against the exact Prop-6 utilities. Expected shape: the gap decays with
// iterations on every instance (the dynamics' convergence is slow —
// polynomial, not geometric — which the table makes visible).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dynamics/proportional_response.hpp"
#include "exp/families.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;

void print_dynamics_report() {
  std::printf("=== E9: proportional response -> BD allocation ===\n\n");
  util::Table table({"instance", "n", "schedule", "gap @1e2", "gap @1e3",
                     "gap @1e4", "gap @1e5", "log-log slope"});

  const std::vector<std::size_t> checkpoints = {100, 1000, 10000, 100000};
  auto run = [&](const char* name, const graph::Graph& g,
                 dynamics::UpdateSchedule schedule, const char* label) {
    dynamics::DynamicsOptions options;
    options.damped = schedule == dynamics::UpdateSchedule::kSynchronous;
    options.schedule = schedule;
    const auto trace = dynamics::trace_convergence(g, options, checkpoints);
    std::vector<std::string> row = {name, std::to_string(g.vertex_count()),
                                    label};
    for (const double gap : trace.gaps)
      row.push_back(util::format_double(gap, 8));
    row.push_back(util::format_double(trace.log_log_slope(), 2));
    table.add_row(std::move(row));
  };
  auto run_both = [&](const char* name, const graph::Graph& g) {
    run(name, g, dynamics::UpdateSchedule::kSynchronous, "sync(damped)");
    run(name, g, dynamics::UpdateSchedule::kRoundRobin, "round-robin");
  };

  run_both("uniform ring", exp::uniform_ring(6));
  util::Xoshiro256 rng(909);
  run_both("random ring",
           graph::make_ring(graph::random_integer_weights(7, rng, 9)));
  run_both("random ring",
           graph::make_ring(graph::random_integer_weights(11, rng, 9)));
  run_both("fig. 1 graph", graph::make_fig1_example());
  run_both("random G(8,.4)", graph::make_random_connected(8, 0.4, rng, 6));

  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check: monotone gap decay on every instance and "
              "schedule (Wu–Zhang convergence; slow 1/t-like instances show "
              "slope near -1, geometric ones are at the 1e-16 floor).\n\n");
}

void BM_DynamicsIteration(benchmark::State& state) {
  util::Xoshiro256 rng(911);
  const graph::Graph g = graph::make_ring(graph::random_integer_weights(
      static_cast<std::size_t>(state.range(0)), rng, 9));
  dynamics::DynamicsOptions options;
  options.damped = true;
  options.max_iterations = 1000;
  options.tolerance = 0.0;
  for (auto _ : state) {
    const auto result = dynamics::run_dynamics(g, options);
    benchmark::DoNotOptimize(result.final_delta);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DynamicsIteration)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_dynamics_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
