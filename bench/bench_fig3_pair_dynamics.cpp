// E3 — Fig. 3: merge/split of bottleneck pairs across adjacent
// decompositions (Proposition 12).
//
// Sweeps misreporting agents on a batch of rings, detects every structural
// breakpoint, classifies each event (merge when x increases vs split), and
// verifies the α-coincidence at the breakpoint — the content of Fig. 3's
// two panels.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/prop12.hpp"
#include "exp/families.hpp"
#include "game/misreport.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;

void print_fig3_report() {
  std::printf("=== E3: Fig. 3 — bottleneck pair dynamics at breakpoints ===\n");
  const auto rings = exp::random_rings(8, 5, 333, 8);

  util::Table table({"instance", "vertex", "breakpoint x", "exact",
                     "event as x grows", "checks"});
  int merges = 0;
  int splits = 0;
  int swaps = 0;
  int flips = 0;
  int violations = 0;
  auto kind_name = [](analysis::PairEventKind kind) {
    switch (kind) {
      case analysis::PairEventKind::kSplit: return "split (Fig 3a)";
      case analysis::PairEventKind::kMerge: return "merge (Fig 3b)";
      case analysis::PairEventKind::kSwap: return "swap (fused 3a+3b)";
      case analysis::PairEventKind::kClassFlip: return "alpha=1 flip";
      case analysis::PairEventKind::kRegion: return "region reorganization";
    }
    return "?";
  };
  for (std::size_t i = 0; i < rings.size(); ++i) {
    for (graph::Vertex v = 0; v < rings[i].vertex_count(); ++v) {
      const game::MisreportAnalysis analysis(rings[i], v);
      const analysis::Prop12Report report = analysis::verify_prop12(
          analysis.parametrized(), analysis.partition(), {v});
      violations += static_cast<int>(report.violations.size());
      for (const auto& event : report.events) {
        switch (event.kind) {
          case analysis::PairEventKind::kSplit: ++splits; break;
          case analysis::PairEventKind::kMerge: ++merges; break;
          case analysis::PairEventKind::kSwap: ++swaps; break;
          case analysis::PairEventKind::kClassFlip: ++flips; break;
        }
        table.add_row({std::to_string(i), "v" + std::to_string(v),
                       util::format_double(event.breakpoint.to_double(), 5),
                       event.exact ? "yes" : "no", kind_name(event.kind),
                       "alpha coincide"});
      }
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("events: %d merges, %d splits, %d swaps, %d alpha=1 flips; "
              "Prop 12 violations: %d\n\n",
              merges, splits, swaps, flips, violations);
}

void BM_Prop12Verification(benchmark::State& state) {
  const auto rings = exp::random_rings(1, static_cast<std::size_t>(state.range(0)),
                                       333, 8);
  for (auto _ : state) {
    const game::MisreportAnalysis analysis(rings[0], 0);
    const auto report = analysis::verify_prop12(
        analysis.parametrized(), analysis.partition(), {0});
    benchmark::DoNotOptimize(report.events.size());
  }
}
BENCHMARK(BM_Prop12Verification)->Arg(4)->Arg(5)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  print_fig3_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
