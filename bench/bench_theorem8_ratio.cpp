// E5 — Theorem 8 (headline): the incentive ratio of the BD mechanism
// against Sybil attacks on rings is exactly 2.
//
// Exhaustive small rings (canonical weight necklaces, exact optimizer) plus
// randomized larger rings; reports the measured maximum per ring size. The
// expected shape: every measured ratio ≤ 2, the sup growing toward 2 as
// instances get more extreme, and no gain at all on even-structured rings.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "exp/certify.hpp"
#include "exp/families.hpp"
#include "exp/sweep.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace ringshare;
using game::Rational;

game::SybilOptions sweep_options() {
  game::SybilOptions options;
  options.samples_per_piece = 24;
  options.refinement_rounds = 24;
  return options;
}

void print_theorem8_report() {
  std::printf("=== E5: Theorem 8 — incentive ratio sweep on rings ===\n\n");
  util::Table table({"family", "n", "instances", "max ratio", "exact value",
                     "<= 2", "seconds"});

  const auto options = sweep_options();
  auto run = [&](const char* family, std::size_t n,
                 const std::vector<graph::Graph>& rings) {
    util::Timer timer;
    const exp::SweepResult result = exp::sweep_rings(rings, options);
    table.add_row({family, std::to_string(n), std::to_string(rings.size()),
                   util::format_double(result.max_ratio.to_double(), 6),
                   result.max_ratio.to_string().substr(0, 24),
                   result.max_ratio <= Rational(2) ? "yes" : "NO",
                   util::format_double(timer.elapsed_seconds(), 1)});
    return result;
  };

  // Exhaustive small rings: every weight necklace over {1..4} (n=3) and
  // {1..3} (n=4).
  run("exhaustive {1..4}", 3, exp::exhaustive_rings(3, 4));
  run("exhaustive {1..3}", 4, exp::exhaustive_rings(4, 3));
  // Random rings per size.
  run("random w<=10", 4, exp::random_rings(12, 4, 1001));
  run("random w<=10", 5, exp::random_rings(12, 5, 1002));
  run("random w<=10", 6, exp::random_rings(8, 6, 1003));
  run("random w<=10", 7, exp::random_rings(6, 7, 1004));
  // The adversarial 7-ring family found by worst-case search.
  std::vector<graph::Graph> adversarial;
  adversarial.push_back(graph::make_ring(
      {Rational(7), Rational(6), Rational(22), Rational(5), Rational(48),
       Rational(9), Rational(2)}));
  run("adversarial search", 7, adversarial);

  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check: all measured ratios <= 2 (tight bound), gains "
              "concentrate on odd/uneven rings.\n\n");

  // Grid certificates: exhaustive necklace enumerations, every agent
  // optimized, every evaluation exact.
  std::printf("grid certificates:\n");
  for (const auto& [n, w] : std::vector<std::pair<std::size_t, std::int64_t>>{
           {3, 4}, {4, 3}, {5, 2}}) {
    const exp::Certificate certificate = exp::certify_rings(n, w, options);
    std::printf("  %s\n", certificate.summary().c_str());
  }
  std::printf("\n");
}

void BM_SybilOptimizerPerVertex(benchmark::State& state) {
  const auto rings =
      exp::random_rings(1, static_cast<std::size_t>(state.range(0)), 77, 8);
  const auto options = sweep_options();
  for (auto _ : state) {
    const auto optimum = game::optimize_sybil_split(rings[0], 0, options);
    benchmark::DoNotOptimize(optimum.ratio);
  }
}
BENCHMARK(BM_SybilOptimizerPerVertex)->Arg(4)->Arg(5)->Arg(6)->Arg(7)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_theorem8_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
