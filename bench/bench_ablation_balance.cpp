// E13 — ablation: why the allocation must be the balanced (min-norm) flow.
//
// Definition 5 leaves the pair flows underdetermined; this bench runs the
// mechanism under both policies (raw extreme-point max-flow vs canonical
// min-norm) across an instance sweep and counts, for each:
//   * Def.-5 axiom violations            (none for either — both are valid),
//   * proportional-response fixed-point violations,
//   * Lemma 9 honest-split anchor violations on rings.
// Expected shape: the extreme-point flow breaks the fixed point and the
// Lemma 9 anchor on a significant fraction of instances; the balanced flow
// never does — the reproduction finding documented in DESIGN.md.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bd/allocation.hpp"
#include "exp/families.hpp"
#include "game/sybil_ring.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using bd::BalancePolicy;
using game::Rational;

struct PolicyStats {
  int instances = 0;
  int axiom_violations = 0;
  int fixed_point_violations = 0;
  int lemma9_violations = 0;
};

/// Lemma 9 check under an explicit allocation: split at that allocation's
/// transfer amounts and compare the copies' total to U_v.
bool lemma9_holds(const graph::Graph& ring, graph::Vertex v,
                  const bd::Allocation& allocation,
                  const bd::Decomposition& decomposition) {
  // Successor = the neighbor the split construction attaches v¹ to.
  const auto neighbors = ring.neighbors(v);
  const graph::Vertex successor = neighbors[0];
  const Rational w1 = allocation.sent(v, successor);
  const game::SybilSplit split =
      game::split_ring(ring, v, w1, ring.weight(v) - w1);
  const bd::Decomposition path_decomposition(split.path);
  return path_decomposition.utility(split.v1) +
             path_decomposition.utility(split.v2) ==
         decomposition.utility(v);
}

void print_ablation_report() {
  std::printf("=== E13: extreme-point vs balanced allocation ===\n\n");

  std::vector<graph::Graph> rings = exp::random_rings(10, 5, 777, 8);
  {
    auto odd = exp::random_rings(6, 7, 778, 8);
    rings.insert(rings.end(), odd.begin(), odd.end());
    auto even = exp::random_rings(6, 6, 779, 8);
    rings.insert(rings.end(), even.begin(), even.end());
  }
  rings.push_back(exp::uniform_ring(3));  // the directed-3-cycle poster child
  rings.push_back(exp::uniform_ring(5));
  rings.push_back(exp::uniform_ring(6));

  PolicyStats raw;
  PolicyStats balanced;
  auto account = [&](PolicyStats& stats, const graph::Graph& ring,
                     BalancePolicy policy) {
    const bd::Decomposition decomposition(ring);
    const bd::Allocation allocation = bd::bd_allocation(decomposition, policy);
    ++stats.instances;
    stats.axiom_violations += static_cast<int>(
        bd::allocation_violations(decomposition, allocation).size());
    stats.fixed_point_violations +=
        bd::fixed_point_violations(decomposition, allocation).empty() ? 0 : 1;
    for (graph::Vertex v = 0; v < ring.vertex_count(); ++v) {
      if (!lemma9_holds(ring, v, allocation, decomposition)) {
        ++stats.lemma9_violations;
        break;  // count instances, not vertices
      }
    }
  };
  for (const auto& ring : rings) {
    account(raw, ring, BalancePolicy::kExtremePoint);
    account(balanced, ring, BalancePolicy::kMinNorm);
  }

  util::Table table({"policy", "instances", "Def-5 axiom violations",
                     "PR fixed-point broken", "Lemma 9 anchor broken"});
  table.add_row({"extreme-point max-flow", std::to_string(raw.instances),
                 std::to_string(raw.axiom_violations),
                 std::to_string(raw.fixed_point_violations),
                 std::to_string(raw.lemma9_violations)});
  table.add_row({"min-norm (default)", std::to_string(balanced.instances),
                 std::to_string(balanced.axiom_violations),
                 std::to_string(balanced.fixed_point_violations),
                 std::to_string(balanced.lemma9_violations)});
  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check: both satisfy Def. 5; only the balanced flow is a "
              "dynamics fixed point and supports Lemma 9.\n\n");
}

void BM_BalancedAllocation(benchmark::State& state) {
  const auto rings =
      exp::random_rings(1, static_cast<std::size_t>(state.range(0)), 777, 8);
  const bd::Decomposition decomposition(rings[0]);
  for (auto _ : state) {
    const auto allocation = bd::bd_allocation(decomposition);
    benchmark::DoNotOptimize(allocation.vertex_count());
  }
}
void BM_ExtremePointAllocation(benchmark::State& state) {
  const auto rings =
      exp::random_rings(1, static_cast<std::size_t>(state.range(0)), 777, 8);
  const bd::Decomposition decomposition(rings[0]);
  for (auto _ : state) {
    const auto allocation =
        bd::bd_allocation(decomposition, BalancePolicy::kExtremePoint);
    benchmark::DoNotOptimize(allocation.vertex_count());
  }
}
BENCHMARK(BM_BalancedAllocation)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ExtremePointAllocation)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
