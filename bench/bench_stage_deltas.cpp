// E10 — the per-stage sign structure driving the Theorem 8 proof
// (Lemmas 16/18/19 for C-class manipulators, 22/24 for B-class).
//
// Runs the exact stage decomposition for every vertex of a ring sweep and
// tabulates the four deltas' signs plus the lemma checks. Expected shape:
// stage-1 riser gains at most U_v (B case) / loses (C case), partner
// deltas vanish or stay non-positive — exactly the inequality pattern the
// proof composes into U' ≤ 2·U_v.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stages.hpp"
#include "exp/families.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using game::Rational;

game::SybilOptions stage_options() {
  game::SybilOptions options;
  options.samples_per_piece = 24;
  options.refinement_rounds = 24;
  return options;
}

void print_stage_report() {
  std::printf("=== E10: stage deltas (Lemmas 16/18/19/22/24) ===\n\n");
  util::Table table({"instance", "v", "ring class", "form", "d1 s1", "d2 s1",
                     "d1 s2", "d2 s2", "U'/U", "checks"});

  std::vector<graph::Graph> rings = exp::random_rings(6, 5, 555, 8);
  rings.push_back(graph::make_ring({Rational(7), Rational(6), Rational(22),
                                    Rational(5), Rational(48), Rational(9),
                                    Rational(2)}));
  rings.push_back(exp::near_tight_ring(Rational(50)));

  int violations = 0;
  const auto options = stage_options();
  for (std::size_t i = 0; i < rings.size(); ++i) {
    for (graph::Vertex v = 0; v < rings[i].vertex_count(); ++v) {
      const analysis::StageReport report =
          analysis::analyze_stages(rings[i], v, options);
      violations += static_cast<int>(report.violations.size());
      const double ratio = report.honest_ring_utility.is_zero()
                               ? 0.0
                               : (report.optimal.total() /
                                  report.honest_ring_utility)
                                     .to_double();
      table.add_row(
          {std::to_string(i), "v" + std::to_string(v),
           bd::to_string(report.ring_class),
           analysis::to_string(report.initial_form),
           util::format_double(report.delta1_stage1.to_double(), 4),
           util::format_double(report.delta2_stage1.to_double(), 4),
           util::format_double(report.delta1_stage2.to_double(), 4),
           util::format_double(report.delta2_stage2.to_double(), 4),
           util::format_double(ratio, 4),
           report.violations.empty() ? "ok" : report.violations.front()});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("lemma violations: %d; every U'/U column entry <= 2 "
              "(Theorem 8).\n\n", violations);
}

void BM_StageAnalysis(benchmark::State& state) {
  const auto rings =
      exp::random_rings(1, static_cast<std::size_t>(state.range(0)), 555, 8);
  const auto options = stage_options();
  for (auto _ : state) {
    const auto report = analysis::analyze_stages(rings[0], 0, options);
    benchmark::DoNotOptimize(report.optimal.total());
  }
}
BENCHMARK(BM_StageAnalysis)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_stage_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
