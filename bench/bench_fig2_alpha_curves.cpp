// E2 — Fig. 2: the three shapes of α_v(x) under misreporting (Prop. 11).
//
// Builds one instance per case (B-1: always C class, non-decreasing;
// B-2: always B class, non-increasing; B-3: crossover at α = 1), traces the
// exact curves, and prints the series the figure plots.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/prop11.hpp"
#include "graph/builders.hpp"
#include "util/table.hpp"

namespace {

using namespace ringshare;
using analysis::AlphaCase;
using graph::Rational;

struct CaseInstance {
  const char* label;
  graph::Graph graph;
  graph::Vertex vertex;
  AlphaCase expected;
};

std::vector<CaseInstance> case_instances() {
  std::vector<CaseInstance> out;
  // B-1: hub with heavy leaves never leaves C class.
  out.push_back({"Case B-1", graph::make_star({Rational(2), Rational(9),
                                               Rational(9)}),
                 0, AlphaCase::kB1});
  // B-2: a leaf of a light hub never leaves B class.
  out.push_back({"Case B-2", graph::make_star({Rational(1), Rational(4),
                                               Rational(4)}),
                 1, AlphaCase::kB2});
  // B-3: on a two-agent exchange the crossover sits at the partner's
  // weight: α_v(x) = x/2 below, 2/x above.
  out.push_back({"Case B-3", graph::make_path({Rational(4), Rational(2)}), 0,
                 AlphaCase::kB3});
  return out;
}

void print_fig2_report() {
  std::printf("=== E2: Fig. 2 — shapes of alpha_v(x) ===\n\n");
  for (const CaseInstance& instance : case_instances()) {
    const game::MisreportAnalysis analysis(instance.graph, instance.vertex);
    const analysis::Prop11Report report =
        analysis::verify_prop11(analysis, 16);
    std::printf("%s: classified %s (expected %s); checks %s\n",
                instance.label,
                analysis::to_string(report.alpha_case).c_str(),
                analysis::to_string(instance.expected).c_str(),
                report.violations.empty() ? "hold"
                                          : report.violations.front().c_str());
    util::Table table({"x", "alpha_v(x)", "U_v(x)", "class"});
    for (const auto& point : report.trace) {
      table.add_row({util::format_double(point.x.to_double(), 4),
                     util::format_double(point.alpha.to_double(), 4),
                     util::format_double(point.utility.to_double(), 4),
                     bd::to_string(point.cls)});
    }
    std::printf("%s\n", table.to_text().c_str());
  }
}

void BM_AlphaCurveTrace(benchmark::State& state) {
  const auto instances = case_instances();
  const auto& instance = instances[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const game::MisreportAnalysis analysis(instance.graph, instance.vertex);
    const auto report = analysis::verify_prop11(analysis, 8);
    benchmark::DoNotOptimize(report.trace.size());
  }
}
BENCHMARK(BM_AlphaCurveTrace)->DenseRange(0, 2);

}  // namespace

int main(int argc, char** argv) {
  print_fig2_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
