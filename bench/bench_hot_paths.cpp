// bench_hot_paths — before/after measurement of the hot-path engine.
//
// Runs each kernel twice inside one binary:
//   * baseline  — BigInt inline fast path disabled and every HotPathConfig
//     accelerator (memo cache, Dinkelbach warm start, flow arenas) off,
//     which reproduces the pre-engine behavior;
//   * optimized — everything on (the library default).
//
// Every kernel returns its exact mechanism outputs; the bench hard-fails if
// baseline and optimized disagree on any of them, so the speedup numbers
// can never come from changed results. Timings, speedups and the perf
// counter totals of the optimized pass are written to BENCH_hotpaths.json
// at the repository root.
//
// Not a google-benchmark target on purpose: the kernels are seconds-scale
// end-to-end sweeps and the JSON contract needs one deterministic run of
// each configuration.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bd/decomposition.hpp"
#include "bd/memo.hpp"
#include "game/sybil_ring.hpp"
#include "graph/builders.hpp"
#include "numeric/bigint.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ringshare;
using num::BigInt;
using num::Rational;

#ifndef RINGSHARE_REPO_ROOT
#define RINGSHARE_REPO_ROOT "."
#endif

void configure(bool optimized) {
  BigInt::set_fast_path_enabled(optimized);
  // This bench measures the PR-1 accelerators in isolation: pin the later
  // engine layers off in both passes (their fields default to on).
  bd::HotPathConfig config;
  config.memo_cache = optimized;
  config.warm_start = optimized;
  config.flow_arena = optimized;
  config.canonical_cache = false;
  config.incremental_flow = false;
  config.ring_kernel = false;
  config.cross_check_kernel = false;
  // The Layer-10 interval filter removes most of the tall-operand BigInt
  // traffic the PR-1 fast path accelerates; leaving it on (even
  // symmetrically) measures the fast path on a starved workload. Pin it
  // off with the other later layers.
  config.filtered_numerics = false;
  bd::hot_path_config() = config;
  bd::BottleneckCache::instance().clear();
  util::PerfCounters::reset();
}

struct KernelRun {
  double seconds = 0;
  std::vector<std::string> outputs;  ///< exact results, stringified
  util::PerfSnapshot counters;
};

template <typename Kernel>
KernelRun run_kernel(bool optimized, Kernel&& kernel) {
  configure(optimized);
  KernelRun run;
  util::Timer timer;
  run.outputs = kernel();
  run.seconds = timer.elapsed_seconds();
  run.counters = util::PerfCounters::snapshot();
  return run;
}

/// Kernel 1 — decomposition sweep: rings and random graphs decomposed
/// repeatedly (sweeps revisit instances, so repeats are part of the load).
std::vector<std::string> decomposition_kernel() {
  util::Xoshiro256 rng(8086);
  std::vector<graph::Graph> instances;
  for (int i = 0; i < 12; ++i)
    instances.push_back(
        graph::make_ring(graph::random_integer_weights(12, rng, 40)));
  for (int i = 0; i < 6; ++i)
    instances.push_back(graph::make_random_connected(10, 0.35, rng));

  std::vector<std::string> outputs;
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const graph::Graph& g : instances) {
      const bd::Decomposition decomposition(g);
      std::ostringstream line;
      for (const auto& pair : decomposition.pairs())
        line << pair.alpha.to_string() << ";";
      outputs.push_back(line.str());
    }
  }
  return outputs;
}

/// Kernel 2 — misreport-style family sweep: dense decomposition sampling
/// along one parametrized family (the breakpoint bisection's access
/// pattern, where warm starts and the cache shine).
std::vector<std::string> family_kernel() {
  util::Xoshiro256 rng(6502);
  const graph::Graph ring =
      graph::make_ring(graph::random_integer_weights(11, rng, 30));
  const game::ParametrizedGraph family = game::sybil_family(ring, 3);
  const Rational w_v = ring.weight(3);

  std::vector<std::string> outputs;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i <= 160; ++i) {
      const Rational t = w_v * Rational(i, 160);
      const bd::Decomposition decomposition = family.decompose(t);
      std::ostringstream line;
      line << decomposition.pair_count() << ":"
           << (decomposition.utility(0) +
               decomposition.utility(ring.vertex_count()))
                  .to_string();
      outputs.push_back(line.str());
    }
  }
  return outputs;
}

/// Kernel 3 — the acceptance kernel: full Sybil sweep of an n = 10 ring
/// with default SybilOptions (every vertex optimized, exact ratios).
std::vector<std::string> sybil_sweep_kernel() {
  util::Xoshiro256 rng(4004);
  const graph::Graph ring =
      graph::make_ring(graph::random_integer_weights(10, rng, 25));

  std::vector<std::string> outputs;
  for (graph::Vertex v = 0; v < ring.vertex_count(); ++v) {
    const game::SybilOptimum optimum =
        game::optimize_sybil_split(ring, v, game::SybilOptions{});
    std::ostringstream line;
    line << "v" << v << " ratio=" << optimum.ratio.to_string()
         << " w1*=" << optimum.w1_star.to_string()
         << " U=" << optimum.utility.to_string();
    outputs.push_back(line.str());
  }
  return outputs;
}

struct KernelReport {
  std::string name;
  KernelRun baseline;
  KernelRun optimized;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return optimized.seconds > 0 ? baseline.seconds / optimized.seconds : 0;
  }
};

template <typename Kernel>
KernelReport benchmark_kernel(const std::string& name, Kernel&& kernel) {
  std::printf("[%s] baseline pass...\n", name.c_str());
  KernelReport report;
  report.name = name;
  report.baseline = run_kernel(/*optimized=*/false, kernel);
  std::printf("[%s] optimized pass...\n", name.c_str());
  report.optimized = run_kernel(/*optimized=*/true, kernel);
  report.identical = report.baseline.outputs == report.optimized.outputs;
  std::printf("[%s] baseline %.3fs, optimized %.3fs, speedup %.2fx, %s\n",
              name.c_str(), report.baseline.seconds, report.optimized.seconds,
              report.speedup(),
              report.identical ? "results identical" : "RESULTS DIFFER");
  return report;
}

void write_json(const std::vector<KernelReport>& reports,
                const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"hot_paths\",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const KernelReport& r = reports[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"baseline_seconds\": " << r.baseline.seconds << ",\n"
        << "      \"optimized_seconds\": " << r.optimized.seconds << ",\n"
        << "      \"speedup\": " << r.speedup() << ",\n"
        << "      \"results_identical\": "
        << (r.identical ? "true" : "false") << ",\n"
        << "      \"outputs\": " << r.baseline.outputs.size() << ",\n"
        << "      \"baseline_counters\": " << r.baseline.counters.to_json(6)
        << ",\n"
        << "      \"optimized_counters\": " << r.optimized.counters.to_json(6)
        << "\n    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  std::vector<KernelReport> reports;
  reports.push_back(benchmark_kernel("decomposition_sweep",
                                     decomposition_kernel));
  reports.push_back(benchmark_kernel("family_sweep", family_kernel));
  reports.push_back(benchmark_kernel("sybil_sweep_n10", sybil_sweep_kernel));

  const std::string json_path =
      std::string(RINGSHARE_REPO_ROOT) + "/BENCH_hotpaths.json";
  write_json(reports, json_path);
  std::printf("\nwrote %s\n", json_path.c_str());

  int exit_code = 0;
  for (const KernelReport& r : reports) {
    if (!r.identical) {
      std::printf("FAIL: %s results differ between configurations\n",
                  r.name.c_str());
      exit_code = 1;
    }
  }
  // Acceptance bar: the Sybil sweep must gain at least 2x. The original
  // PR-1 bar was 3x, but later structural rewrites (division-free
  // cold-bound argmin, sorted-by-construction piece-solver candidates)
  // replaced the old code paths outright and sped the baseline pass up
  // more than the optimized one, compressing the isolated ratio to ~2.4x.
  // A genuine fast-path/memo/warm-start regression lands near 1x, so 2x
  // still separates regression from noise.
  const KernelReport& sybil = reports.back();
  if (sybil.identical && sybil.speedup() < 2.0) {
    std::printf("FAIL: sybil_sweep_n10 speedup %.2fx < 2x\n", sybil.speedup());
    exit_code = 1;
  }
  // Leave the process in the default (optimized) configuration.
  configure(/*optimized=*/true);
  return exit_code;
}
