// bench_serve — before/after bench for the sharded batch-serving layer
// (engine/batch_server.hpp) against the naive per-request baseline.
//
// Workload: symmetric-heavy, the regime serving is built for. Two base
// 6-rings are expanded into every rotation × reflection × {1, 5} scaling
// (24 registered instances per base), and EVERY deviation task of every
// kind is queried against every instance, twice (two epochs of the same
// request list). The second epoch replays keys the shards have already
// solved, so it must be answered entirely by the canonical result caches.
//
// Passes (both run with the library-default accelerators, caches cleared
// and counters reset before each rep; best of three reps each):
//   * naive  — one sequential DeviationEngine::solve per request: the
//     per-request cost with no routing, no dedup, no result reuse.
//   * served — the same request list through BatchServer: fingerprint
//     routing, single-flight dedup, shard caches, pipelined workers.
//
// Contracts (any violation exits nonzero):
//   * every served response is bit-identical to the naive solve of the
//     same request (ratio, t_star, utility, honest_utility) — dedup and
//     caching are optimizations, never approximations;
//   * served throughput >= 3x the naive baseline;
//   * both dedup_hits and cache_hits fired (the layer actually engaged);
//   * a cross-check pass (PieceSolveOptions::cross_check armed through
//     the server) reports zero violations and zero error responses.
//
// Throughput, client-observed latency quantiles (p50/p95/p99), hit ratios
// and the served pass's perf counters are written to BENCH_serve.json at
// the repository root.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bd/memo.hpp"
#include "engine/batch_server.hpp"
#include "engine/wire.hpp"
#include "exp/families.hpp"
#include "game/piece_solver.hpp"
#include "graph/builders.hpp"
#include "numeric/bigint.hpp"
#include "util/perf_counters.hpp"
#include "util/timer.hpp"

namespace {

using namespace ringshare;
using num::BigInt;
using num::Rational;

#ifndef RINGSHARE_REPO_ROOT
#define RINGSHARE_REPO_ROOT "."
#endif

constexpr std::size_t kShards = 4;
constexpr int kReps = 3;

/// Library-default accelerators, cold shared caches, zeroed counters — the
/// same starting line for every rep of every pass.
void configure() {
  BigInt::set_fast_path_enabled(true);
  bd::hot_path_config() = bd::HotPathConfig{};
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();
  game::PartitionMemo::instance().clear();
  util::PerfCounters::reset();
}

struct Request {
  std::size_t instance;
  game::DeviationTask task;
};

struct Workload {
  std::vector<graph::Graph> instances;
  std::vector<Request> requests;  ///< both epochs, in submission order
  std::size_t epoch_requests = 0;
};

/// Two base rings expanded into their full rotation/reflection/scaling
/// orbit, with every deviation task of every kind queried per instance.
Workload build_workload() {
  const std::vector<std::vector<Rational>> bases = {
      {Rational(4), Rational(1), Rational(3), Rational(2), Rational(2),
       Rational(5)},
      {Rational(7), Rational(2), Rational(2), Rational(6), Rational(1),
       Rational(3)},
  };
  const std::vector<game::DeviationKind> kinds = {
      game::DeviationKind::kSybil, game::DeviationKind::kMisreport,
      game::DeviationKind::kCollusion};

  Workload workload;
  for (const std::vector<Rational>& base : bases) {
    const std::size_t n = base.size();
    for (std::size_t rot = 0; rot < n; ++rot) {
      for (const bool reflect : {false, true}) {
        for (const int scale : {1, 5}) {
          std::vector<Rational> weights(n);
          for (std::size_t j = 0; j < n; ++j) {
            const std::size_t src = reflect ? (rot + n - j) % n : (rot + j) % n;
            weights[j] = base[src] * Rational(scale);
          }
          workload.instances.push_back(graph::make_ring(std::move(weights)));
        }
      }
    }
  }
  for (std::size_t i = 0; i < workload.instances.size(); ++i)
    for (const game::DeviationKind kind : kinds)
      for (const game::DeviationTask& task :
           game::deviation_tasks(workload.instances[i], kind))
        workload.requests.push_back(Request{i, task});
  workload.epoch_requests = workload.requests.size();
  // Epoch 2: the same list again — replayed after a drain, so the shards
  // answer it from their canonical caches without a single fresh solve.
  workload.requests.reserve(2 * workload.epoch_requests);
  for (std::size_t k = 0; k < workload.epoch_requests; ++k)
    workload.requests.push_back(workload.requests[k]);
  return workload;
}

std::string optimum_signature(const game::DeviationOptimum& optimum) {
  return optimum.ratio.to_string() + '|' + optimum.t_star.to_string() + '|' +
         optimum.utility.to_string() + '|' + optimum.honest_utility.to_string();
}

struct NaiveRun {
  double seconds = 0;
  std::vector<std::string> signatures;
  util::LatencyHistogram latency;
};

/// One sequential DeviationEngine::solve per request — the baseline the
/// serving layer must beat.
NaiveRun run_naive(const Workload& workload) {
  configure();
  const engine::DeviationEngine eng;
  NaiveRun run;
  run.signatures.reserve(workload.requests.size());
  util::Timer timer;
  for (const Request& request : workload.requests) {
    const auto start = std::chrono::steady_clock::now();
    const game::DeviationOptimum optimum =
        eng.solve(workload.instances[request.instance], request.task);
    run.latency.record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    run.signatures.push_back(optimum_signature(optimum));
  }
  run.seconds = timer.elapsed_seconds();
  return run;
}

struct ServedRun {
  double seconds = 0;
  std::vector<std::string> signatures;  ///< indexed by request id
  engine::ServeStats stats;
  util::PerfSnapshot counters;
};

/// The same request list through the batch server: epoch 1 submitted in one
/// burst (dedup + solves), a drain, then epoch 2 (pure cache replay).
ServedRun run_served(const Workload& workload) {
  configure();
  ServedRun run;
  run.signatures.resize(workload.requests.size());
  std::vector<std::string> lines(workload.requests.size());
  engine::BatchServerConfig config;
  config.shards = kShards;
  util::Timer timer;
  {
    engine::BatchServer server(config, [&](const std::string& line) {
      const auto req = engine::json_uint_field(line, "req");
      if (req && *req < lines.size()) lines[*req] = line;
    });
    for (std::size_t i = 0; i < workload.instances.size(); ++i)
      server.register_instance(i, workload.instances[i]);
    for (std::size_t k = 0; k < workload.epoch_requests; ++k)
      server.submit(k, engine::format_task_key(workload.requests[k].instance,
                                               workload.requests[k].task));
    server.drain();
    for (std::size_t k = workload.epoch_requests; k < workload.requests.size();
         ++k)
      server.submit(k, engine::format_task_key(workload.requests[k].instance,
                                               workload.requests[k].task));
    server.drain();
    run.stats = server.stats();
  }
  run.seconds = timer.elapsed_seconds();
  run.counters = util::PerfCounters::snapshot();
  for (std::size_t k = 0; k < lines.size(); ++k) {
    const auto ratio = engine::json_string_field(lines[k], "ratio");
    const auto t_star = engine::json_string_field(lines[k], "t_star");
    const auto utility = engine::json_string_field(lines[k], "utility");
    const auto honest = engine::json_string_field(lines[k], "honest_utility");
    if (ratio && t_star && utility && honest)
      run.signatures[k] = *ratio + '|' + *t_star + '|' + *utility + '|' +
                          *honest;
  }
  return run;
}

/// Cross-check pass: the full epoch-1 list served with the exact solver's
/// scan cross-check armed — a violation surfaces as an error response.
engine::ServeStats run_cross_check(const Workload& workload) {
  configure();
  engine::BatchServerConfig config;
  config.shards = kShards;
  config.solver.cross_check = true;
  engine::BatchServer server(config, [](const std::string&) {});
  for (std::size_t i = 0; i < workload.instances.size(); ++i)
    server.register_instance(i, workload.instances[i]);
  for (std::size_t k = 0; k < workload.epoch_requests; ++k)
    server.submit(k, engine::format_task_key(workload.requests[k].instance,
                                             workload.requests[k].task));
  server.drain();
  return server.stats();
}

const char* bool_json(bool value) { return value ? "true" : "false"; }

}  // namespace

int main() {
  const Workload workload = build_workload();
  std::printf("[serve] workload: %zu instances, %zu requests (2 epochs)\n",
              workload.instances.size(), workload.requests.size());

  std::printf("[serve] naive per-request baseline (best of %d)...\n", kReps);
  NaiveRun naive = run_naive(workload);
  for (int rep = 1; rep < kReps; ++rep) {
    NaiveRun again = run_naive(workload);
    if (again.signatures != naive.signatures) {
      std::printf("FAIL: naive reps are not deterministic\n");
      return 1;
    }
    if (again.seconds < naive.seconds) naive = std::move(again);
  }
  std::printf("[serve] naive %.3fs (%.0f req/s)\n", naive.seconds,
              workload.requests.size() / naive.seconds);

  std::printf("[serve] batch server, %zu shards (best of %d)...\n", kShards,
              kReps);
  ServedRun served = run_served(workload);
  for (int rep = 1; rep < kReps; ++rep) {
    ServedRun again = run_served(workload);
    if (again.signatures != served.signatures) {
      std::printf("FAIL: served reps are not deterministic\n");
      return 1;
    }
    if (again.seconds < served.seconds) served = std::move(again);
  }
  const double naive_throughput = workload.requests.size() / naive.seconds;
  const double served_throughput = workload.requests.size() / served.seconds;
  const double speedup = naive.seconds / served.seconds;
  std::printf("[serve] served %.3fs (%.0f req/s), speedup %.2fx\n",
              served.seconds, served_throughput, speedup);
  std::printf(
      "[serve] solves %llu, dedup %llu, cache %llu of %llu requests\n",
      static_cast<unsigned long long>(served.stats.solves),
      static_cast<unsigned long long>(served.stats.dedup_hits),
      static_cast<unsigned long long>(served.stats.cache_hits),
      static_cast<unsigned long long>(served.stats.requests));
  std::printf("[serve] latency p50 %.3fms p95 %.3fms p99 %.3fms\n",
              served.stats.latency.p50_ms(), served.stats.latency.p95_ms(),
              served.stats.latency.p99_ms());

  const bool results_identical = served.signatures == naive.signatures;
  std::printf("[serve] %s\n", results_identical ? "results identical"
                                                : "RESULTS DIFFER");

  std::printf("[serve] cross-check pass (exact vs scan, armed)...\n");
  const engine::ServeStats cc = run_cross_check(workload);
  const std::uint64_t cc_violations = cc.errors;
  std::printf("[serve] cross-check: %llu violations over %llu requests\n",
              static_cast<unsigned long long>(cc_violations),
              static_cast<unsigned long long>(cc.requests));

  const std::uint64_t answered = served.stats.solves +
                                 served.stats.dedup_hits +
                                 served.stats.cache_hits;
  const double dedup_ratio =
      served.stats.requests
          ? static_cast<double>(served.stats.dedup_hits) / served.stats.requests
          : 0;
  const double cache_ratio =
      served.stats.requests
          ? static_cast<double>(served.stats.cache_hits) / served.stats.requests
          : 0;

  const std::string json_path =
      std::string(RINGSHARE_REPO_ROOT) + "/BENCH_serve.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"serve\",\n"
        << "  \"workload\": {\"instances\": " << workload.instances.size()
        << ", \"n\": 6, \"requests\": " << workload.requests.size()
        << ", \"epochs\": 2},\n"
        << "  \"shards\": " << kShards << ",\n"
        << "  \"naive_seconds\": " << naive.seconds << ",\n"
        << "  \"served_seconds\": " << served.seconds << ",\n"
        << "  \"naive_throughput_rps\": " << naive_throughput << ",\n"
        << "  \"served_throughput_rps\": " << served_throughput << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"speedup_floor\": 3,\n"
        << "  \"results_identical\": " << bool_json(results_identical) << ",\n"
        << "  \"served\": {\"requests\": " << served.stats.requests
        << ", \"solves\": " << served.stats.solves
        << ", \"dedup_hits\": " << served.stats.dedup_hits
        << ", \"cache_hits\": " << served.stats.cache_hits
        << ", \"errors\": " << served.stats.errors
        << ", \"dedup_hit_ratio\": " << dedup_ratio
        << ", \"cache_hit_ratio\": " << cache_ratio << "},\n"
        << "  \"served_latency_ms\": {\"p50\": " << served.stats.latency.p50_ms()
        << ", \"p95\": " << served.stats.latency.p95_ms()
        << ", \"p99\": " << served.stats.latency.p99_ms() << "},\n"
        << "  \"naive_latency_ms\": {\"p50\": " << naive.latency.p50_ms()
        << ", \"p95\": " << naive.latency.p95_ms()
        << ", \"p99\": " << naive.latency.p99_ms() << "},\n"
        << "  \"cross_check\": {\"requests\": " << cc.requests
        << ", \"violations\": " << cc_violations << "},\n"
        << "  \"served_counters\": " << served.counters.to_json(2) << "\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  int exit_code = 0;
  if (!results_identical) {
    std::printf("FAIL: served responses differ from the naive baseline\n");
    exit_code = 1;
  }
  if (speedup < 3.0) {
    std::printf("FAIL: served speedup %.2fx below the 3x floor\n", speedup);
    exit_code = 1;
  }
  if (served.stats.dedup_hits == 0) {
    std::printf("FAIL: single-flight dedup never fired\n");
    exit_code = 1;
  }
  if (served.stats.cache_hits == 0) {
    std::printf("FAIL: shard result caches never fired\n");
    exit_code = 1;
  }
  if (served.stats.errors != 0 || answered != served.stats.requests) {
    std::printf("FAIL: served pass emitted errors or lost requests\n");
    exit_code = 1;
  }
  if (cc_violations != 0) {
    std::printf("FAIL: %llu cross-check violations through the server\n",
                static_cast<unsigned long long>(cc_violations));
    exit_code = 1;
  }
  configure();
  return exit_code;
}
