// bench_deviation_engine — certification bench for the unified deviation
// engine (game/deviation.hpp): Sybil splits, misreports and collusions all
// running the shared exact piece-solver pipeline.
//
// Sections:
//   * sweep      — a fixed all-kinds workload (every deviation task of
//     every instance): accelerators on (library default, best of five
//     cold-cache reps for noise-robust phase timings) vs everything off
//     (cold reference). The exact optima must be bit-identical across
//     every rep and between the two modes.
//   * bounds     — per-kind worst-case incentive ratios from the sweep,
//     checked exactly against the paper's Theorem 8 bound (<= 2) and
//     reported next to the prior-work baselines 3 and 4 the theorem
//     tightens. Misreport is additionally pinned to exactly 1 (Theorem 10:
//     the truthful report is optimal).
//   * cross_check — >= 1000 randomized instances, deviation kinds rotating
//     per instance, solved with PieceSolveOptions::cross_check armed: the
//     exact per-piece optimum must dominate every legacy-scan sample
//     (std::logic_error otherwise). Zero violations required.
//   * incremental_flow — isolation of HotPathConfig::incremental_flow on
//     degree->=3 graphs (stars, complete graphs, random connected — the
//     ring kernel cannot serve these): decompositions with the layer on
//     must match the cold-Dinic engine bit for bit, the
//     flow_incremental_reruns counter must fire on the >= 16-vertex
//     instances, and the small-graph size gate must bypass the rest.
//
// Timings, contract outcomes and the accelerated pass's perf counters are
// written to BENCH_deviation.json at the repository root; any violated
// contract exits nonzero.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bd/decomposition.hpp"
#include "bd/memo.hpp"
#include "exp/families.hpp"
#include "game/deviation.hpp"
#include "game/piece_solver.hpp"
#include "numeric/bigint.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ringshare;
using num::BigInt;
using num::Rational;

#ifndef RINGSHARE_REPO_ROOT
#define RINGSHARE_REPO_ROOT "."
#endif

void configure(bool accelerators) {
  BigInt::set_fast_path_enabled(accelerators);
  bd::HotPathConfig config;
  config.memo_cache = accelerators;
  config.warm_start = accelerators;
  config.flow_arena = accelerators;
  config.canonical_cache = accelerators;
  config.incremental_flow = accelerators;
  config.decomposition_cache = accelerators;
  config.ring_kernel = accelerators;
  config.cross_check_kernel = false;
  config.signature_oracle = accelerators;
  config.cross_check_signature_oracle = false;
  config.filtered_numerics = accelerators;
  config.cross_check_filtered = false;
  bd::hot_path_config() = config;
  bd::BottleneckCache::instance().clear();
  bd::DecompositionCache::instance().clear();
  game::PartitionMemo::instance().clear();
  util::PerfCounters::reset();
}

struct KindStats {
  std::size_t tasks = 0;
  bool any = false;
  Rational worst_ratio;
};

struct DeviationRun {
  double seconds = 0;
  std::vector<std::string> outputs;  ///< per task, full optimum stringified
  KindStats by_kind[game::kDeviationKindCount];
  util::PerfSnapshot counters;
};

/// Run every deviation task of every instance under one configuration.
DeviationRun run_all_kinds(const std::vector<graph::Graph>& rings,
                           bool accelerators) {
  configure(accelerators);
  game::DeviationSweep sweep;
  sweep.kinds = {game::DeviationKind::kSybil, game::DeviationKind::kMisreport,
                 game::DeviationKind::kCollusion};
  // The cold reference also turns off the solver-level accelerators (batched
  // candidate evaluation, the float pre-filter, the cross-vertex partition
  // memo), so the identity contract covers every layer added since the seed.
  sweep.options.batch_candidate_eval = accelerators;
  sweep.options.float_prefilter = accelerators;
  sweep.options.partition_memo = accelerators;
  DeviationRun run;
  util::Timer timer;
  for (const graph::Graph& ring : rings) {
    for (const game::DeviationTask& task : sweep.tasks(ring)) {
      const game::DeviationOptimum optimum = sweep.run(ring, task);
      std::ostringstream line;
      line << game::to_string(task.kind) << " v=" << task.vertex
           << " p=" << task.partner << " ratio=" << optimum.ratio.to_string()
           << " t*=" << optimum.t_star.to_string()
           << " U=" << optimum.utility.to_string()
           << " H=" << optimum.honest_utility.to_string();
      run.outputs.push_back(line.str());
      KindStats& stats = run.by_kind[static_cast<int>(task.kind)];
      ++stats.tasks;
      if (!stats.any || stats.worst_ratio < optimum.ratio) {
        stats.worst_ratio = optimum.ratio;
        stats.any = true;
      }
    }
  }
  run.seconds = timer.elapsed_seconds();
  run.counters = util::PerfCounters::snapshot();
  return run;
}

/// Cross-check sweep: exact solver with cross_check armed, which throws
/// std::logic_error if any scan sample beats the exact optimum on any
/// piece. Kinds rotate per instance. Returns the number of violating tasks.
std::size_t cross_check_violations(std::size_t instances, std::size_t n,
                                   std::uint64_t seed) {
  const std::vector<graph::Graph> rings =
      exp::random_rings(instances, n, seed, 12);
  game::DeviationOptions options;
  options.cross_check = true;
  std::size_t violations = 0;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    game::DeviationTask task;
    task.kind = static_cast<game::DeviationKind>(i % game::kDeviationKindCount);
    // One task per instance keeps 1000 instances tractable while still
    // varying the deviator's position (and the coalition edge).
    task.vertex = static_cast<graph::Vertex>(i % n);
    task.partner = static_cast<graph::Vertex>((task.vertex + 1) % n);
    try {
      (void)game::optimize_deviation(rings[i], task, options);
    } catch (const std::logic_error& error) {
      std::printf("cross-check violation (instance %zu, %s, vertex %u): %s\n",
                  i, game::to_string(task.kind), task.vertex, error.what());
      ++violations;
    }
  }
  return violations;
}

/// Isolation of the incremental-flow layer on degree->=3 graphs.
struct IncrementalSection {
  double cold_seconds = 0;
  double incremental_seconds = 0;
  std::uint64_t reruns = 0;
  std::uint64_t bypasses = 0;
  bool results_identical = false;
  bool kernel_stayed_out = false;
};

std::string observe_decomposition(const graph::Graph& g) {
  const bd::Decomposition decomposition(g);
  std::ostringstream os;
  for (const auto& pair : decomposition.pairs()) {
    os << '[';
    for (graph::Vertex v : pair.b) os << v << ' ';
    os << "| a=" << pair.alpha.to_string() << "] ";
  }
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v)
    os << decomposition.utility(v).to_string() << ' ';
  return os.str();
}

IncrementalSection bench_incremental_flow() {
  util::Xoshiro256 rng(775577);
  std::vector<graph::Graph> graphs;
  graphs.push_back(graph::make_fig1_example());
  for (std::size_t n = 6; n <= 10; ++n) {
    graphs.push_back(
        graph::make_star(graph::random_integer_weights(n, rng, 13)));
    graphs.push_back(
        graph::make_complete(graph::random_integer_weights(n, rng, 13)));
    graphs.push_back(graph::make_random_connected(n + 2, 0.45, rng, 11));
  }
  // Instances at or above incremental_flow_min_vertices (16), where the
  // size gate lets the layer engage — without these every decomposition
  // would take the small-graph bypass and reruns would stay zero.
  for (std::size_t n = 16; n <= 20; n += 2) {
    graphs.push_back(
        graph::make_complete(graph::random_integer_weights(n, rng, 13)));
    graphs.push_back(graph::make_random_connected(n, 0.4, rng, 11));
  }

  // Flow-only configuration: no memo/warm start so every decomposition
  // actually descends, giving the incremental layer iterations to repair.
  auto flow_only = [](bool incremental) {
    BigInt::set_fast_path_enabled(true);
    bd::HotPathConfig config;
    config.memo_cache = false;
    config.warm_start = false;
    config.flow_arena = true;
    config.canonical_cache = false;
    config.incremental_flow = incremental;
    config.ring_kernel = false;
    config.cross_check_kernel = false;
    bd::hot_path_config() = config;
    bd::BottleneckCache::instance().clear();
    util::PerfCounters::reset();
  };
  constexpr int kRepeats = 20;

  IncrementalSection out;
  std::vector<std::string> cold_outputs;
  flow_only(false);
  {
    util::Timer timer;
    for (int r = 0; r < kRepeats; ++r)
      for (const graph::Graph& g : graphs) cold_outputs.push_back(observe_decomposition(g));
    out.cold_seconds = timer.elapsed_seconds();
  }

  std::vector<std::string> incremental_outputs;
  flow_only(true);
  {
    util::Timer timer;
    for (int r = 0; r < kRepeats; ++r)
      for (const graph::Graph& g : graphs)
        incremental_outputs.push_back(observe_decomposition(g));
    out.incremental_seconds = timer.elapsed_seconds();
  }
  const util::PerfSnapshot snapshot = util::PerfCounters::snapshot();
  out.reruns = snapshot.flow_incremental_reruns;
  out.bypasses = snapshot.flow_incremental_bypasses;
  out.kernel_stayed_out = snapshot.ring_kernel_evals == 0;
  out.results_identical = cold_outputs == incremental_outputs;
  return out;
}

const char* bool_json(bool value) { return value ? "true" : "false"; }

}  // namespace

int main() {
  // Fixed workload: 10 random 6-rings; per ring 6 sybil + 6 misreport + 6
  // collusion tasks = 180 tasks total.
  const std::vector<graph::Graph> rings = exp::random_rings(10, 6, 7100, 24);

  // Best-of-5 on the accelerated pass: each rep starts cold (configure()
  // clears the shared caches), the engine is deterministic (reps must agree
  // bit-for-bit — checked below), so the minimum shared-phase rep is the
  // pass's cost with the least scheduler interference. The cold pass stays
  // single-rep: it only anchors results_identical and the speedup headline.
  std::printf("[deviation] accelerated pass (all kinds, best of 5)...\n");
  DeviationRun accelerated = run_all_kinds(rings, /*accelerators=*/true);
  const auto shared_ns = [](const DeviationRun& run) {
    return run.counters.phase_ns[static_cast<int>(util::Phase::kPartition)] +
           run.counters.phase_ns[static_cast<int>(util::Phase::kDecompose)];
  };
  bool reps_identical = true;
  for (int rep = 1; rep < 5; ++rep) {
    DeviationRun again = run_all_kinds(rings, /*accelerators=*/true);
    reps_identical = reps_identical && again.outputs == accelerated.outputs;
    if (shared_ns(again) < shared_ns(accelerated))
      accelerated = std::move(again);
  }
  std::printf("[deviation] accelerated %.3fs over %zu tasks\n",
              accelerated.seconds, accelerated.outputs.size());

  std::printf("[deviation] cold pass (accelerators off)...\n");
  const DeviationRun cold = run_all_kinds(rings, /*accelerators=*/false);
  std::printf("[deviation] cold %.3fs\n", cold.seconds);

  const bool results_identical = accelerated.outputs == cold.outputs;
  const double speedup =
      accelerated.seconds > 0 ? cold.seconds / accelerated.seconds : 0;
  std::printf("[deviation] %s, accel speedup %.2fx\n",
              results_identical ? "results identical" : "RESULTS DIFFER",
              speedup);

  // Per-kind worst ratios vs Theorem 8 (<= 2) and the prior bounds 3 / 4.
  const Rational bound(2);
  bool bounds_ok = true;
  for (int k = 0; k < game::kDeviationKindCount; ++k) {
    const KindStats& stats = accelerated.by_kind[k];
    if (!stats.any) {
      bounds_ok = false;
      continue;
    }
    const bool within = !(bound < stats.worst_ratio);
    bounds_ok = bounds_ok && within;
    std::printf("[bounds] %-9s worst ratio %s (%.6f) %s 2\n",
                game::to_string(static_cast<game::DeviationKind>(k)),
                stats.worst_ratio.to_string().c_str(),
                stats.worst_ratio.to_double(), within ? "<=" : ">");
  }
  const KindStats& misreport_stats =
      accelerated.by_kind[static_cast<int>(game::DeviationKind::kMisreport)];
  const bool misreport_exactly_one =
      misreport_stats.any && misreport_stats.worst_ratio == Rational(1);
  if (!misreport_exactly_one)
    std::printf("[bounds] misreport worst ratio != 1 (Theorem 10 violated)\n");

  std::printf("[cross-check] 1002 randomized instances, kinds rotating...\n");
  util::Timer cc_timer;
  const std::size_t cc_violations = cross_check_violations(1002, 5, 515151);
  const double cc_seconds = cc_timer.elapsed_seconds();
  std::printf("[cross-check] %zu violations in %.3fs\n", cc_violations,
              cc_seconds);

  std::printf("[incremental] degree->=3 isolation...\n");
  const IncrementalSection incremental = bench_incremental_flow();
  std::printf(
      "[incremental] cold %.3fs vs incremental %.3fs, %llu reruns, "
      "%llu small-graph bypasses, %s\n",
      incremental.cold_seconds, incremental.incremental_seconds,
      static_cast<unsigned long long>(incremental.reruns),
      static_cast<unsigned long long>(incremental.bypasses),
      incremental.results_identical ? "results identical" : "RESULTS DIFFER");

  const double phase_ms_partition =
      accelerated.counters
          .phase_ns[static_cast<int>(util::Phase::kPartition)] /
      1e6;
  const double phase_ms_decompose =
      accelerated.counters
          .phase_ns[static_cast<int>(util::Phase::kDecompose)] /
      1e6;
  std::printf("[deviation] shared phases: partition %.1fms, decompose %.1fms\n",
              phase_ms_partition, phase_ms_decompose);

  const std::string json_path =
      std::string(RINGSHARE_REPO_ROOT) + "/BENCH_deviation.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"deviation_engine\",\n"
        << "  \"workload\": {\"rings\": " << rings.size()
        << ", \"n\": 6, \"tasks\": " << accelerated.outputs.size() << "},\n"
        << "  \"accelerated_seconds\": " << accelerated.seconds << ",\n"
        << "  \"cold_seconds\": " << cold.seconds << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"results_identical\": " << bool_json(results_identical)
        << ",\n"
        // Shared sweep costs of the accelerated pass: partition wall time
        // (inclusive — the decompose probes it still issues nest inside it)
        // and total decompose wall time. The tier-1 smoke holds their sum
        // under the 60ms budget.
        << "  \"phase_ms_partition\": " << phase_ms_partition << ",\n"
        << "  \"phase_ms_decompose\": " << phase_ms_decompose << ",\n"
        << "  \"shared_phase_ms\": "
        << phase_ms_partition + phase_ms_decompose << ",\n"
        << "  \"shared_phase_budget_ms\": 60,\n"
        << "  \"theorem8_bound\": 2,\n"
        << "  \"prior_bounds\": [3, 4],\n"
        << "  \"by_kind\": {\n";
    for (int k = 0; k < game::kDeviationKindCount; ++k) {
      const KindStats& stats = accelerated.by_kind[k];
      out << "    \"" << game::to_string(static_cast<game::DeviationKind>(k))
          << "\": {\"tasks\": " << stats.tasks << ", \"worst_ratio\": \""
          << (stats.any ? stats.worst_ratio.to_string() : "none")
          << "\", \"worst_ratio_double\": "
          << (stats.any ? stats.worst_ratio.to_double() : 0.0)
          << ", \"within_bound_2\": "
          << bool_json(stats.any && !(bound < stats.worst_ratio)) << "}"
          << (k + 1 < game::kDeviationKindCount ? "," : "") << "\n";
    }
    out << "  },\n"
        << "  \"misreport_ratio_exactly_one\": "
        << bool_json(misreport_exactly_one) << ",\n"
        << "  \"cross_check\": {\"instances\": 1002, \"violations\": "
        << cc_violations << ", \"seconds\": " << cc_seconds << "},\n"
        << "  \"incremental_flow\": {\"cold_seconds\": "
        << incremental.cold_seconds
        << ", \"incremental_seconds\": " << incremental.incremental_seconds
        << ", \"reruns\": " << incremental.reruns
        << ", \"small_graph_bypasses\": " << incremental.bypasses
        << ", \"min_vertices\": " << bd::HotPathConfig{}.incremental_flow_min_vertices
        << ", \"results_identical\": "
        << bool_json(incremental.results_identical)
        << ", \"kernel_stayed_out\": "
        << bool_json(incremental.kernel_stayed_out) << "},\n"
        << "  \"accelerated_counters\": " << accelerated.counters.to_json(2)
        << "\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  int exit_code = 0;
  if (!results_identical) {
    std::printf("FAIL: optima differ between accelerator modes\n");
    exit_code = 1;
  }
  if (!reps_identical) {
    std::printf("FAIL: accelerated reps are not deterministic\n");
    exit_code = 1;
  }
  if (!bounds_ok) {
    std::printf("FAIL: a deviation kind exceeded the Theorem 8 bound 2\n");
    exit_code = 1;
  }
  if (!misreport_exactly_one) {
    std::printf("FAIL: misreport worst ratio is not exactly 1\n");
    exit_code = 1;
  }
  if (cc_violations > 0) {
    std::printf("FAIL: %zu cross-check violations\n", cc_violations);
    exit_code = 1;
  }
  if (incremental.reruns == 0) {
    std::printf("FAIL: incremental-flow layer never engaged\n");
    exit_code = 1;
  }
  if (!incremental.results_identical) {
    std::printf("FAIL: incremental flow changed a decomposition\n");
    exit_code = 1;
  }
  if (!incremental.kernel_stayed_out) {
    std::printf("FAIL: ring kernel engaged on a degree->=3 graph\n");
    exit_code = 1;
  }
  configure(/*accelerators=*/true);
  return exit_code;
}
