// ringshare_cli — analyze a saved instance end-to-end.
//
// Loads a graph from the text format (graph/io.hpp), prints its bottleneck
// decomposition, equilibrium utilities and allocation, and — when it is a
// ring — the full Sybil analysis for a chosen vertex. Writes the instance
// back out with `--save <path>` so searches, benches and bug reports can
// exchange instances.
//
//   $ ./ringshare_cli <graph-file> [vertex] [--save <path>]
//   $ ./ringshare_cli --demo           # run on a built-in example
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/verify_all.hpp"
#include "bd/allocation.hpp"
#include "game/sybil_ring.hpp"
#include "graph/builders.hpp"
#include "graph/io.hpp"

int main(int argc, char** argv) {
  using namespace ringshare;
  using graph::Rational;

  graph::Graph g;
  graph::Vertex vertex = 0;
  std::string save_path;

  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    g = graph::make_ring({Rational(7), Rational(6), Rational(22), Rational(5),
                          Rational(48), Rational(9), Rational(2)});
  } else if (argc >= 2) {
    try {
      g = graph::load_graph(argv[1]);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "usage: %s <graph-file>|--demo [vertex] [--save <path>]\n",
                 argv[0]);
    return 1;
  }
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else {
      vertex = static_cast<graph::Vertex>(std::atoi(argv[i]));
    }
  }
  if (vertex >= g.vertex_count()) {
    std::fprintf(stderr, "vertex out of range\n");
    return 1;
  }

  std::printf("instance: %zu vertices, %zu edges, total weight %s\n",
              g.vertex_count(), g.edge_count(),
              g.total_weight().to_string().c_str());

  const bd::Decomposition decomposition(g);
  std::printf("\nbottleneck decomposition:\n%s",
              decomposition.to_string().c_str());

  std::printf("\nutilities (Prop. 6):\n");
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    std::printf("  v%u: class %-3s U = %s (%.4f)\n", v,
                bd::to_string(decomposition.vertex_class(v)).c_str(),
                decomposition.utility(v).to_string().c_str(),
                decomposition.utility(v).to_double());
  }

  const bd::Allocation allocation = bd::bd_allocation(decomposition);
  const auto axioms = bd::allocation_violations(decomposition, allocation);
  const auto fixed_point =
      bd::fixed_point_violations(decomposition, allocation);
  std::printf("\nallocation: %zu transfers; axioms %s; PR fixed point %s\n",
              allocation.transfers().size(),
              axioms.empty() ? "hold" : axioms.front().c_str(),
              fixed_point.empty() ? "holds" : fixed_point.front().c_str());

  // Ring? Then run the Sybil analysis.
  bool is_ring = g.is_connected() && g.vertex_count() >= 3;
  for (graph::Vertex v = 0; is_ring && v < g.vertex_count(); ++v) {
    if (g.degree(v) != 2) is_ring = false;
  }
  if (is_ring && !g.weight(vertex).is_zero()) {
    const game::SybilOptimum optimum = game::optimize_sybil_split(g, vertex);
    std::printf("\nSybil attack by v%u: best split w1* = %.6f, U' = %.6f, "
                "ratio = %.6f (Theorem 8: <= 2)\n",
                vertex, optimum.w1_star.to_double(),
                optimum.utility.to_double(), optimum.ratio.to_double());
  }

  // Machine-check every paper property on this instance.
  analysis::FullVerificationOptions verify_options;
  verify_options.game_checks = is_ring;
  const analysis::FullReport verification =
      analysis::full_verification(g, verify_options);
  std::printf("\npaper-property verification: %d checker layers, %s\n",
              verification.checks_run,
              verification.ok()
                  ? "all hold"
                  : verification.violations.front().c_str());

  if (!save_path.empty()) {
    graph::save_graph(g, save_path);
    std::printf("\nsaved instance to %s\n", save_path.c_str());
  }
  return verification.ok() ? 0 : 1;
}
