// quickstart — the library in five minutes.
//
// Builds a small ring of agents, computes its bottleneck decomposition,
// runs the BD Allocation Mechanism, and prints who gives what to whom.
//
//   $ ./quickstart
#include <cstdio>

#include "bd/allocation.hpp"
#include "graph/builders.hpp"

int main() {
  using namespace ringshare;
  using graph::Rational;

  // A ring of five agents with endowments 4, 1, 3, 2, 5.
  const graph::Graph ring = graph::make_ring(
      {Rational(4), Rational(1), Rational(3), Rational(2), Rational(5)});

  std::printf("== resource sharing ring (n = %zu) ==\n", ring.vertex_count());
  for (graph::Vertex v = 0; v < ring.vertex_count(); ++v)
    std::printf("  agent v%u brings w = %s\n", v,
                ring.weight(v).to_string().c_str());

  // 1. Bottleneck decomposition (Definition 2 of the paper).
  const bd::Decomposition decomposition(ring);
  std::printf("\n== bottleneck decomposition ==\n%s",
              decomposition.to_string().c_str());

  // 2. Equilibrium utilities (Proposition 6): w·α for B-class agents,
  //    w/α for C-class agents.
  std::printf("\n== equilibrium utilities ==\n");
  for (graph::Vertex v = 0; v < ring.vertex_count(); ++v) {
    std::printf("  v%u: class %-3s  alpha = %-8s  U = %s (%.4f)\n", v,
                bd::to_string(decomposition.vertex_class(v)).c_str(),
                decomposition.alpha_of(v).to_string().c_str(),
                decomposition.utility(v).to_string().c_str(),
                decomposition.utility(v).to_double());
  }

  // 3. The concrete allocation: exact transfers along edges.
  const bd::Allocation allocation = bd::bd_allocation(decomposition);
  std::printf("\n== transfers (x_uv: u sends to v) ==\n");
  for (const auto& [u, v, amount] : allocation.transfers()) {
    std::printf("  v%u -> v%u : %s (%.4f)\n", u, v, amount.to_string().c_str(),
                amount.to_double());
  }

  // 4. Sanity: the mechanism is budget balanced and matches Prop 6.
  const auto violations = bd::allocation_violations(decomposition, allocation);
  std::printf("\nallocation axioms: %s\n",
              violations.empty() ? "all hold" : violations.front().c_str());
  return violations.empty() ? 0 : 1;
}
