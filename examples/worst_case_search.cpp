// worst_case_search — randomized search for high incentive ratios.
//
// Samples random rings, runs the exact Sybil optimizer on every vertex (in
// parallel), and reports the instances closest to the tight bound 2 of
// Theorem 8. A refinement stage hill-climbs the best instance's weights.
//
//   $ ./worst_case_search [instances] [ring-size] [seed]
#include <cstdio>
#include <cstdlib>

#include "exp/families.hpp"
#include "exp/sweep.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ringshare;
  using game::Rational;

  const std::size_t instances =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2020;

  game::SybilOptions options;
  options.samples_per_piece = 24;
  options.refinement_rounds = 20;

  std::printf("sampling %zu random %zu-rings...\n", instances, n);
  const auto rings = exp::random_rings(instances, n, seed);
  const exp::SweepResult sweep = exp::sweep_rings(rings, options);
  std::printf("best random instance: ratio %.6f (vertex v%u of instance %zu)\n",
              sweep.max_ratio.to_double(), sweep.argmax_vertex,
              sweep.argmax_instance);

  // Hill-climb the winner.
  std::vector<Rational> weights = rings[sweep.argmax_instance].weights();
  graph::Vertex v = sweep.argmax_vertex;
  Rational best = sweep.max_ratio;
  util::Xoshiro256 rng(seed ^ 0xABCDEF);
  std::printf("\nrefining by hill-climbing (40 steps)...\n");
  for (int it = 0; it < 40; ++it) {
    auto candidate = weights;
    const auto k = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const std::int64_t numerator = rng.uniform_int(2, 6);
    candidate[k] = candidate[k] * Rational(numerator, 4);  // x0.5 .. x1.5
    if (candidate[k].is_zero()) continue;
    const Rational ratio =
        game::optimize_sybil_split(graph::make_ring(candidate), v, options)
            .ratio;
    if (best < ratio) {
      best = ratio;
      weights = candidate;
      std::printf("  step %2d: ratio %.6f\n", it, ratio.to_double());
    }
  }

  std::printf("\nfinal ratio %.6f on weights:", best.to_double());
  for (const auto& w : weights) std::printf(" %s", w.to_string().c_str());
  std::printf("\nTheorem 8 bound respected: %s\n",
              best <= Rational(2) ? "yes (<= 2)" : "VIOLATED — impossible");

  // Persist the extremal instance for replay with ringshare_cli.
  const std::string out_path = "worst_case_found.graph";
  graph::save_graph(graph::make_ring(weights), out_path);
  std::printf("saved extremal instance to ./%s (analyze it with "
              "./ringshare_cli %s %u)\n",
              out_path.c_str(), out_path.c_str(), v);
  return best <= Rational(2) ? 0 : 1;
}
