// misreport_curves — trace U_v(x) and α_v(x) for a misreporting agent.
//
// Reproduces the objects behind Theorem 10 and Proposition 11: the exact
// breakpoint structure of B(x), the piecewise α curve (one of the three
// shapes of Fig. 2), and the monotone utility curve. Prints a CSV-ready
// series.
//
//   $ ./misreport_curves [vertex]
#include <cstdio>
#include <cstdlib>

#include "analysis/prop11.hpp"
#include "game/misreport.hpp"
#include "graph/builders.hpp"

int main(int argc, char** argv) {
  using namespace ringshare;
  using graph::Rational;

  const graph::Graph ring = graph::make_ring(
      {Rational(6), Rational(1), Rational(2), Rational(3), Rational(1)});
  const auto v = static_cast<graph::Vertex>(argc > 1 ? std::atoi(argv[1]) : 0);
  if (v >= ring.vertex_count()) {
    std::fprintf(stderr, "vertex out of range\n");
    return 1;
  }

  const game::MisreportAnalysis analysis(ring, v);
  const game::StructurePartition& partition = analysis.partition();

  std::printf("agent v%u, true weight %s; %zu structure pieces, breakpoints:\n",
              v, ring.weight(v).to_string().c_str(), partition.piece_count());
  for (const auto& bp : partition.breakpoints) {
    std::printf("  x = %s (%.6f)%s\n", bp.value.to_string().c_str(),
                bp.value.to_double(), bp.exact ? " [exact]" : " [approx]");
  }

  const analysis::Prop11Report report = analysis::verify_prop11(analysis, 32);
  std::printf("\nalpha curve shape: Case %s (Prop. 11)\n",
              analysis::to_string(report.alpha_case).c_str());
  std::printf("monotonicity/shape checks: %s\n",
              report.violations.empty() ? "all hold"
                                        : report.violations.front().c_str());

  std::printf("\nx,alpha,utility,class\n");
  for (const auto& point : report.trace) {
    std::printf("%.6f,%.6f,%.6f,%s\n", point.x.to_double(),
                point.alpha.to_double(), point.utility.to_double(),
                bd::to_string(point.cls).c_str());
  }
  return 0;
}
