// dynamics_convergence — watch the distributed protocol find the
// equilibrium.
//
// Runs the Wu–Zhang proportional response dynamics (the BitTorrent-style
// tit-for-tat update) on a ring and compares the trajectory against the
// exact utilities predicted by the bottleneck decomposition (Prop. 6).
//
//   $ ./dynamics_convergence [n]
#include <cstdio>
#include <cstdlib>

#include "bd/decomposition.hpp"
#include "dynamics/proportional_response.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ringshare;
  using graph::Rational;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
  util::Xoshiro256 rng(2020);
  const graph::Graph ring =
      graph::make_ring(graph::random_integer_weights(n, rng, 9));

  const bd::Decomposition decomposition(ring);
  std::printf("exact equilibrium utilities (Prop. 6):\n");
  for (graph::Vertex v = 0; v < n; ++v)
    std::printf("  v%u: %s (%.6f)\n", v,
                decomposition.utility(v).to_string().c_str(),
                decomposition.utility(v).to_double());

  std::printf("\nproportional response dynamics (damped):\n");
  std::printf("%10s  %14s  %14s\n", "iterations", "max step", "gap to BD");
  for (const std::size_t budget : {10u, 100u, 1000u, 10000u, 100000u}) {
    dynamics::DynamicsOptions options;
    options.damped = true;
    options.max_iterations = budget;
    options.tolerance = 0.0;  // run the full budget
    const dynamics::DynamicsResult result =
        dynamics::run_dynamics(ring, options);
    std::printf("%10zu  %14.3e  %14.3e\n", result.iterations,
                result.final_delta,
                dynamics::utility_gap_to_bd(ring, result));
  }

  std::printf("\nfinal utilities vs exact:\n");
  dynamics::DynamicsOptions options;
  options.damped = true;
  const dynamics::DynamicsResult result = dynamics::run_dynamics(ring, options);
  for (graph::Vertex v = 0; v < n; ++v) {
    std::printf("  v%u: dynamics %.8f   exact %.8f\n", v, result.utilities[v],
                decomposition.utility(v).to_double());
  }
  std::printf("\nconverged: %s after %zu iterations\n",
              result.converged ? "yes" : "no", result.iterations);
  return 0;
}
