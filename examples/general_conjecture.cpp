// general_conjecture — probe the paper's closing conjecture beyond rings.
//
// The paper conjectures that the incentive ratio of the BD mechanism under
// Sybil attacks is 2 on arbitrary networks. This example enumerates every
// neighbor partition for each vertex of a few small non-ring networks,
// searches the weight simplex, and reports the best attack found — all
// exact evaluations, none exceeding 2.
//
//   $ ./general_conjecture
#include <cstdio>

#include "game/sybil_general.hpp"
#include "graph/builders.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ringshare;
  using graph::Rational;

  struct Named {
    const char* name;
    graph::Graph graph;
  };
  util::Xoshiro256 rng(77);
  std::vector<Named> graphs;
  graphs.push_back({"K4 (uneven)", graph::make_complete({Rational(1),
                                                         Rational(3),
                                                         Rational(2),
                                                         Rational(5)})});
  graphs.push_back({"star-4", graph::make_star({Rational(2), Rational(1),
                                                Rational(4), Rational(3)})});
  graphs.push_back({"Fig.1 example", graph::make_fig1_example()});
  graphs.push_back({"random G(6, .5)",
                    graph::make_random_connected(6, 0.5, rng, 6)});

  game::GeneralSybilOptions options;
  options.grid = 10;
  options.refinement_rounds = 8;

  std::printf("%-16s %-4s %-8s %-10s %-10s %-8s\n", "graph", "v", "degree",
              "honest U", "best U'", "ratio");
  Rational worst(0);
  for (const auto& [name, g] : graphs) {
    for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.degree(v) < 2 || g.weight(v).is_zero()) continue;
      const game::GeneralSybilOptimum optimum =
          game::optimize_general_sybil(g, v, options);
      std::printf("%-16s v%-3u %-8zu %-10.4f %-10.4f %-8.5f\n", name, v,
                  g.degree(v), optimum.honest_utility.to_double(),
                  optimum.utility.to_double(), optimum.ratio.to_double());
      if (worst < optimum.ratio) worst = optimum.ratio;
    }
  }
  std::printf("\nmax ratio over all attacks: %.6f — conjecture (<= 2) %s\n",
              worst.to_double(),
              worst <= Rational(2) ? "holds" : "VIOLATED");
  return worst <= Rational(2) ? 0 : 1;
}
