// sybil_attack — walk through a complete Sybil attack on a ring.
//
// Shows the honest utility, the split path, the exact structure breakpoints
// of the split sweep, the optimal split, and the resulting incentive ratio
// (which Theorem 8 bounds by 2).
//
//   $ ./sybil_attack [vertex]
#include <cstdio>
#include <cstdlib>

#include "analysis/stages.hpp"
#include "game/sybil_ring.hpp"
#include "graph/builders.hpp"

int main(int argc, char** argv) {
  using namespace ringshare;
  using graph::Rational;

  // A 7-agent ring on which the attack genuinely pays (found by the
  // worst-case search example).
  const graph::Graph ring = graph::make_ring(
      {Rational(7), Rational(6), Rational(22), Rational(5), Rational(48),
       Rational(9), Rational(2)});
  const auto v = static_cast<graph::Vertex>(argc > 1 ? std::atoi(argv[1]) : 0);
  if (v >= ring.vertex_count()) {
    std::fprintf(stderr, "vertex out of range\n");
    return 1;
  }

  const bd::Decomposition decomposition(ring);
  std::printf("manipulator v%u: w = %s, class %s, honest U_v = %s (%.4f)\n", v,
              ring.weight(v).to_string().c_str(),
              bd::to_string(decomposition.vertex_class(v)).c_str(),
              decomposition.utility(v).to_string().c_str(),
              decomposition.utility(v).to_double());

  // The honest split (Lemma 9): replicating the mechanism's own transfers
  // gains nothing.
  const auto [w1_0, w2_0] = game::honest_split_weights(ring, v);
  std::printf("honest split (w1_0, w2_0) = (%.4f, %.4f), utility %.4f\n",
              w1_0.to_double(), w2_0.to_double(),
              game::sybil_utility(ring, v, w1_0).to_double());

  // The structural breakpoints of the diagonal sweep w1 in [0, w_v].
  const game::ParametrizedGraph family = game::sybil_family(ring, v);
  const game::StructurePartition partition =
      game::find_structure_partition(family);
  std::printf("\nstructure pieces along w1 in [0, %s]:\n",
              ring.weight(v).to_string().c_str());
  for (std::size_t i = 0; i < partition.piece_count(); ++i) {
    const auto [lo, hi] = partition.piece_bounds(i);
    std::printf("  piece %zu: (%.6f, %.6f), %zu bottleneck pairs\n", i,
                lo.to_double(), hi.to_double(),
                partition.piece_signatures[i].size());
  }

  // The optimizer: exact evaluation of the best split.
  const game::SybilOptimum optimum = game::optimize_sybil_split(ring, v);
  std::printf("\noptimal split w1* = %.6f  ->  U' = %.6f\n",
              optimum.w1_star.to_double(), optimum.utility.to_double());
  std::printf("incentive ratio = %s (%.6f)  [Theorem 8: <= 2]\n",
              optimum.ratio.to_string().c_str(), optimum.ratio.to_double());

  // The paper's two-stage accounting of the gain.
  const analysis::StageReport stages = analysis::analyze_stages_to(
      ring, v, optimum.w1_star);
  std::printf("\nstage accounting (%s case):\n",
              bd::to_string(stages.ring_class).c_str());
  std::printf("  stage 1: copy1 %+0.4f, copy2 %+0.4f\n",
              stages.delta1_stage1.to_double(),
              stages.delta2_stage1.to_double());
  std::printf("  stage 2: copy1 %+0.4f, copy2 %+0.4f\n",
              stages.delta1_stage2.to_double(),
              stages.delta2_stage2.to_double());
  std::printf("  lemma checks: %s\n", stages.violations.empty()
                                          ? "all hold"
                                          : stages.violations.front().c_str());
  return 0;
}
